"""The batch engine: group, vectorize and account for many queries at once.

Design notes
------------
* A :class:`BatchQuery` names its target structure by key so one runner can
  front a fleet of samplers (e.g. one per shard or per tenant); the common
  single-structure case uses the implicit ``"default"`` key.
* Queries are grouped per structure before execution so each structure's
  bulk path runs back-to-back (warm caches, one side-stream generator), but
  results always come back aligned with the input order.
* Structures without a ``sample_bulk`` method degrade gracefully to their
  scalar ``sample`` loop — every :class:`~repro.core.base.RangeSampler` is
  batchable, just not always vectorized.
* Queries and ops may carry a per-query ``seed``: the runner then routes
  them through the samplers' seed-addressable paths
  (``sample_bulk(seed=...)`` / ``sample_bulk_many(seeds=...)``), making
  each result a pure function of its seed and the structure contents —
  independent of batch composition.  This is what the serving layer's
  reproducibility guarantee stands on.
* :meth:`BatchQueryRunner.run_mixed` executes ordered read/write streams;
  its ``coalesce_reads`` and ``capture_errors`` options (both default
  off, preserving historical semantics exactly) are documented on the
  method and in DESIGN.md §3/§7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.base import RangeSampler
from ..errors import InvalidQueryError, KeyNotFoundError, ReproError
from ..types import QueryStats

try:  # NumPy is optional at runtime; scalar fallbacks return lists.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in CI
    _np = None

__all__ = [
    "BatchQuery",
    "BatchOp",
    "BatchResult",
    "MixedResult",
    "BatchQueryRunner",
    "DEFAULT_STRUCTURE",
]

DEFAULT_STRUCTURE = "default"


@dataclass(frozen=True, slots=True)
class BatchQuery:
    """One range-sampling request inside a batch.

    ``seed`` (optional) pins the query's randomness: the runner then draws
    through a fresh generator from :func:`repro.rng.generator`, so the
    query's samples depend only on the seed and the structure contents —
    not on how the batch was composed.  Unseeded queries draw from the
    structure's own bulk side stream as before.
    """

    lo: float
    hi: float
    t: int
    structure: str = DEFAULT_STRUCTURE
    seed: int | None = None


@dataclass(frozen=True, slots=True)
class BatchOp:
    """One operation inside a mixed read/write stream.

    ``kind`` is ``"insert"``, ``"delete"``, ``"sample"``, ``"count"``, or
    one of the scenario reads — ``"stratified"`` (exact multinomial split
    of ``t`` across :attr:`strata`), ``"sample_wr"`` (bulk Floyd
    without-replacement) and ``"estimate"`` (adaptive online aggregation
    to a target CI half-width).  Use the constructors below rather than
    filling fields positionally.
    """

    kind: str
    value: float = 0.0
    weight: float | None = None
    lo: float = 0.0
    hi: float = 0.0
    t: int = 0
    structure: str = DEFAULT_STRUCTURE
    seed: int | None = None
    strata: tuple = ()
    target: float = 0.0
    confidence: float = 0.95
    batch_draws: int = 256
    max_draws: int = 65536

    @classmethod
    def insert(
        cls, value: float, weight: float | None = None, structure: str = DEFAULT_STRUCTURE
    ) -> "BatchOp":
        """Return an insertion op (``weight`` only on weighted samplers)."""
        return cls("insert", value=float(value), weight=weight, structure=structure)

    @classmethod
    def delete(cls, value: float, structure: str = DEFAULT_STRUCTURE) -> "BatchOp":
        """Return an op deleting one occurrence of ``value``."""
        return cls("delete", value=float(value), structure=structure)

    @classmethod
    def sample(
        cls,
        lo: float,
        hi: float,
        t: int,
        structure: str = DEFAULT_STRUCTURE,
        seed: int | None = None,
    ) -> "BatchOp":
        """Return a range-sampling op (``seed`` pins its randomness)."""
        return cls(
            "sample", lo=float(lo), hi=float(hi), t=int(t), structure=structure,
            seed=seed,
        )

    @classmethod
    def count(
        cls, lo: float, hi: float, structure: str = DEFAULT_STRUCTURE
    ) -> "BatchOp":
        """Return a range-count op (result is ``|P ∩ [lo, hi]|``)."""
        return cls("count", lo=float(lo), hi=float(hi), structure=structure)

    @classmethod
    def stratified(
        cls,
        strata,
        t: int,
        structure: str = DEFAULT_STRUCTURE,
        seed: int | None = None,
    ) -> "BatchOp":
        """Return a stratified-sampling op: ``t`` split exactly across strata."""
        bounds = tuple((float(lo), float(hi)) for lo, hi in strata)
        return cls(
            "stratified", t=int(t), structure=structure, seed=seed, strata=bounds
        )

    @classmethod
    def sample_wr(
        cls,
        lo: float,
        hi: float,
        t: int,
        structure: str = DEFAULT_STRUCTURE,
        seed: int | None = None,
    ) -> "BatchOp":
        """Return a without-replacement bulk op (vectorized Floyd)."""
        return cls(
            "sample_wr", lo=float(lo), hi=float(hi), t=int(t),
            structure=structure, seed=seed,
        )

    @classmethod
    def estimate(
        cls,
        lo: float,
        hi: float,
        *,
        target: float,
        confidence: float = 0.95,
        batch: int = 256,
        max_draws: int = 65536,
        structure: str = DEFAULT_STRUCTURE,
        seed: int | None = None,
    ) -> "BatchOp":
        """Return an adaptive-estimate op (draw until CI width <= target)."""
        return cls(
            "estimate", lo=float(lo), hi=float(hi), structure=structure,
            seed=seed, target=float(target), confidence=float(confidence),
            batch_draws=int(batch), max_draws=int(max_draws),
        )


@dataclass(slots=True)
class MixedResult:
    """Outcome of one :meth:`BatchQueryRunner.run_mixed` call.

    ``samples[i]`` aligns with the ``i``-th input op: the samples of a
    ``sample`` op, the integer result of a ``count`` op, ``None`` for
    updates.  ``stats.extra`` records ``"updates"`` (total update ops),
    ``"bulk_update_calls"`` (how many coalesced bulk calls served them)
    and, with read coalescing on, ``"read_bulk_calls"`` — alongside the
    per-structure ``"queries:<name>"`` counters.

    ``errors`` is ``None`` unless the stream ran with
    ``capture_errors=True``; it then aligns with the ops — ``None`` for an
    op that succeeded, the raised :class:`~repro.errors.ReproError` for
    one that failed.
    """

    samples: list = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    elapsed_seconds: float = 0.0
    errors: list | None = None

    @property
    def operations(self) -> int:
        """Total operations executed (updates + queries)."""
        return self.stats.queries + self.stats.extra.get("updates", 0)

    @property
    def ops_per_second(self) -> float:
        """Stream throughput (0.0 when the stream was empty or instant)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.operations / self.elapsed_seconds


@dataclass(slots=True)
class BatchResult:
    """Outcome of one :meth:`BatchQueryRunner.run` call.

    ``samples[i]`` holds the samples of the ``i``-th input query (a NumPy
    array on the vectorized paths, a list on scalar fallbacks).  ``stats``
    aggregates across the whole batch; ``stats.extra`` records the number
    of queries routed to each structure under ``"queries:<name>"`` keys.
    """

    samples: list = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    elapsed_seconds: float = 0.0

    @property
    def total_samples(self) -> int:
        """Total samples returned across the batch."""
        return self.stats.samples_returned

    @property
    def queries_per_second(self) -> float:
        """Batch throughput (0.0 when the batch was empty or instant)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.stats.queries / self.elapsed_seconds


def _normalize(query) -> BatchQuery:
    if isinstance(query, BatchQuery):
        return query
    try:
        if len(query) == 3:
            lo, hi, t = query
            return BatchQuery(float(lo), float(hi), int(t))
        if len(query) == 4:
            lo, hi, t, structure = query
            return BatchQuery(float(lo), float(hi), int(t), str(structure))
    except (TypeError, ValueError):
        pass
    raise InvalidQueryError(
        f"expected BatchQuery or (lo, hi, t[, structure]) tuple, got {query!r}"
    )


def _accepts_weights(sampler) -> bool:
    """True if the sampler's insert path takes a weight argument.

    Checked upfront by :meth:`BatchQueryRunner.run_mixed` so a weighted
    insert op against an unweighted structure fails as a typed error
    before any op executes, instead of a mid-stream ``TypeError``.
    """
    import inspect

    bulk = getattr(sampler, "insert_bulk", None)
    if bulk is not None:  # flush prefers the bulk path, so its signature rules
        method, param = bulk, "weights"
    else:
        method, param = getattr(sampler, "insert", None), "weight"
    if method is None:
        return False
    try:
        return param in inspect.signature(method).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtin callables
        return False


_SCENARIO_KINDS = ("stratified", "sample_wr", "estimate")


def _normalize_op(op) -> BatchOp:
    """Coerce a :class:`BatchOp` or shorthand tuple to a validated op."""
    if isinstance(op, BatchOp):
        if op.kind not in ("insert", "delete", "sample", "count") + _SCENARIO_KINDS:
            raise InvalidQueryError(f"unknown op kind: {op.kind!r}")
        return op
    try:
        kind = op[0]
        if kind == "insert" and len(op) in (2, 3):
            structure = op[2] if len(op) == 3 else DEFAULT_STRUCTURE
            return BatchOp.insert(float(op[1]), structure=str(structure))
        if kind == "delete" and len(op) in (2, 3):
            structure = op[2] if len(op) == 3 else DEFAULT_STRUCTURE
            return BatchOp.delete(float(op[1]), structure=str(structure))
        if kind == "sample" and len(op) in (4, 5):
            structure = op[4] if len(op) == 5 else DEFAULT_STRUCTURE
            return BatchOp.sample(
                float(op[1]), float(op[2]), int(op[3]), structure=str(structure)
            )
        if kind == "count" and len(op) in (3, 4):
            structure = op[3] if len(op) == 4 else DEFAULT_STRUCTURE
            return BatchOp.count(float(op[1]), float(op[2]), structure=str(structure))
    except (TypeError, ValueError, IndexError):
        pass
    raise InvalidQueryError(
        "expected BatchOp, ('insert'|'delete', value[, structure]), "
        "('sample', lo, hi, t[, structure]) or ('count', lo, hi[, structure]), "
        f"got {op!r}"
    )


def _exec_sample(sampler, bulk, lo: float, hi: float, t: int, seed: int | None):
    """Run one sampling query, honoring an optional per-query seed.

    Seeded queries require a ``sample_bulk`` that accepts ``seed`` (every
    sampler in this library does); a structure without one fails as a
    typed :class:`~repro.errors.InvalidQueryError`.
    """
    if seed is None:
        if bulk is not None:
            return bulk(lo, hi, t)
        return sampler.sample(lo, hi, t)
    if bulk is None:
        raise InvalidQueryError(
            f"{type(sampler).__name__} has no sample_bulk; seeded queries "
            "need one"
        )
    try:
        return bulk(lo, hi, t, seed=seed)
    except TypeError as exc:
        if "seed" not in str(exc):
            raise
        raise InvalidQueryError(
            f"{type(sampler).__name__}.sample_bulk does not accept a "
            "per-query seed; seeded queries need seed= support"
        ) from exc


def _call_many(sampler, many, group: list, seeds: list):
    """Call ``sample_bulk_many`` with per-query seeds, typed on failure."""
    try:
        return many(group, seeds=seeds)
    except TypeError as exc:
        if "seeds" not in str(exc):
            raise
        raise InvalidQueryError(
            f"{type(sampler).__name__}.sample_bulk_many does not accept "
            "per-query seeds; seeded queries need seeds= support"
        ) from exc


class BatchQueryRunner:
    """Execute many ``(lo, hi, t)`` queries through the vectorized paths.

    Parameters
    ----------
    structures:
        Either a single sampler (registered under ``"default"``) or a
        mapping ``name -> sampler``.  Any object satisfying the
        :class:`~repro.core.base.RangeSampler` protocol works; structures
        exposing ``sample_bulk`` get the vectorized treatment.
    """

    def __init__(
        self, structures: RangeSampler | Mapping[str, RangeSampler]
    ) -> None:
        if isinstance(structures, Mapping):
            self._structures = dict(structures)
        else:
            self._structures = {DEFAULT_STRUCTURE: structures}
        if not self._structures:
            raise ValueError("BatchQueryRunner needs at least one structure")

    @property
    def structures(self) -> Mapping[str, RangeSampler]:
        """The registered structures (read-only view by convention)."""
        return self._structures

    def _group(self, batch: Sequence[BatchQuery]) -> dict[str, list[int]]:
        """Group query indices per structure, preserving submission order.

        Every structure name is resolved before anything executes so an
        unknown name fails atomically — no group runs (mutating sampler
        RNG state and stats) only for the batch to abort midway.
        """
        groups: dict[str, list[int]] = {}
        for i, q in enumerate(batch):
            groups.setdefault(q.structure, []).append(i)
        for name in groups:
            if name not in self._structures:
                raise KeyNotFoundError(f"unknown structure: {name!r}")
        return groups

    def run(self, queries: Sequence[BatchQuery | tuple]) -> BatchResult:
        """Execute the batch and return order-aligned samples plus stats."""
        batch = [_normalize(q) for q in queries]
        result = BatchResult(samples=[None] * len(batch))
        stats = result.stats
        groups = self._group(batch)
        clock = time.perf_counter
        start = clock()
        for name, indices in groups.items():
            sampler = self._structures[name]
            many = getattr(sampler, "sample_bulk_many", None)
            if many is not None:
                # Scatter-gather structures take the whole group in one
                # call, so worker dispatch is amortized across the batch.
                group = [(batch[i].lo, batch[i].hi, batch[i].t) for i in indices]
                if any(batch[i].seed is not None for i in indices):
                    seeds = [batch[i].seed for i in indices]
                    group_results = _call_many(sampler, many, group, seeds)
                else:
                    group_results = many(group)
                for i, samples in zip(indices, group_results):
                    result.samples[i] = samples
                    stats.samples_returned += len(samples)
            else:
                bulk = getattr(sampler, "sample_bulk", None)
                for i in indices:
                    q = batch[i]
                    samples = _exec_sample(sampler, bulk, q.lo, q.hi, q.t, q.seed)
                    result.samples[i] = samples
                    stats.samples_returned += len(samples)
            stats.queries += len(indices)
            key = f"queries:{name}"
            stats.extra[key] = stats.extra.get(key, 0) + len(indices)
        result.elapsed_seconds = clock() - start
        return result

    def run_counts(self, queries: Sequence) -> list[int]:
        """Resolve many count-only queries through the vectorized probes.

        ``queries`` are ``(lo, hi[, structure])`` tuples (or
        :class:`BatchQuery` instances whose ``t`` is ignored).  Structures
        exposing ``peek_counts`` answer their whole group with one
        vectorized multi-range probe; the rest fall back to per-query
        ``count``.  Results align with the input order.
        """
        batch: list[BatchQuery] = []
        for query in queries:
            if isinstance(query, BatchQuery):
                batch.append(query)
            else:
                try:
                    if len(query) == 2:
                        lo, hi = query
                        batch.append(BatchQuery(float(lo), float(hi), 0))
                        continue
                    if len(query) == 3 and isinstance(query[2], str):
                        lo, hi, structure = query
                        batch.append(BatchQuery(float(lo), float(hi), 0, structure))
                        continue
                    batch.append(_normalize(query))
                    continue
                except (TypeError, ValueError, InvalidQueryError):
                    pass
                raise InvalidQueryError(
                    f"expected (lo, hi[, structure]) or BatchQuery, got {query!r}"
                )
        groups = self._group(batch)
        out: list[int] = [0] * len(batch)
        for name, indices in groups.items():
            sampler = self._structures[name]
            peek = getattr(sampler, "peek_counts", None)
            if peek is not None:
                counts = peek([(batch[i].lo, batch[i].hi) for i in indices])
                for i, k in zip(indices, counts):
                    out[i] = int(k)
            else:
                for i in indices:
                    out[i] = sampler.count(batch[i].lo, batch[i].hi)
        return out

    def run_mixed(
        self,
        ops: Sequence[BatchOp | tuple],
        *,
        capture_errors: bool = False,
        coalesce_reads: bool = False,
    ) -> MixedResult:
        """Execute a mixed insert/delete/sample/count stream in order.

        Runs of consecutive same-kind updates to the same structure are
        coalesced into one ``insert_bulk``/``delete_bulk`` call (falling
        back to the scalar loop on structures without a bulk path), flushed
        whenever the run breaks — a different op kind against that
        structure, or the end of the stream.  Coalescing preserves the
        stream's semantics exactly: no update is reordered across an update
        of the other kind or across a query that could observe it.

        With ``coalesce_reads=True``, runs of consecutive ``sample`` (and
        ``count``) ops against the same structure are likewise coalesced —
        into one ``sample_bulk_many`` scatter round (resp. one
        ``peek_counts`` probe) on structures that expose them.  Reads never
        cross a write to their structure in either direction, so every
        query observes exactly the updates that preceded it.  Seeded
        sample ops (:attr:`BatchOp.seed`) stay reproducible no matter how
        the runs form; with the default ``coalesce_reads=False``, reads
        execute immediately, exactly as earlier releases did.

        Scenario reads (``stratified``, ``sample_wr``, ``estimate``) never
        coalesce: each flushes its structure's pending run, then executes
        immediately, so it observes exactly the updates that preceded it.

        With ``capture_errors=True``, a failing op no longer aborts the
        stream: its :class:`~repro.errors.ReproError` lands in
        :attr:`MixedResult.errors` at the op's index (the bulk update paths
        validate before mutating, so a failed run is replayed scalar-wise
        to attribute the failure to the exact ops that caused it).  With
        the default ``False``, a failed bulk delete (absent value) raises
        after the updates that preceded its run were applied; the failing
        bulk call itself is atomic on structures with a bulk path.
        """
        stream = [_normalize_op(op) for op in ops]
        result = MixedResult(samples=[None] * len(stream))
        if capture_errors:
            result.errors = [None] * len(stream)
        stats = result.stats
        weight_ok: dict[str, bool] = {}  # signature inspection, once per structure
        for i, op in enumerate(stream):
            try:
                if op.structure not in self._structures:
                    raise KeyNotFoundError(f"unknown structure: {op.structure!r}")
                if op.kind in ("insert", "delete"):
                    sampler = self._structures[op.structure]
                    if (
                        getattr(sampler, op.kind, None) is None
                        and getattr(sampler, op.kind + "_bulk", None) is None
                    ):
                        raise InvalidQueryError(
                            f"structure {op.structure!r} does not support {op.kind}"
                        )
                    if op.kind == "insert" and op.weight is not None:
                        ok = weight_ok.get(op.structure)
                        if ok is None:
                            ok = weight_ok[op.structure] = _accepts_weights(sampler)
                        if not ok:
                            raise InvalidQueryError(
                                f"structure {op.structure!r} does not accept "
                                "weighted inserts"
                            )
            except ReproError as exc:
                # Upfront violations fail the whole stream atomically —
                # except in capture mode, where they become this op's typed
                # error and the op is skipped (its batch-mates still run).
                if not capture_errors:
                    raise
                result.errors[i] = exc
        # Per-structure pending run.  Updates: (kind, values, weights | None,
        # indices); coalesced reads: (kind, indices).
        pending: dict[str, tuple] = {}
        bulk_calls = 0
        read_bulk_calls = 0
        updates = 0
        count_ops = 0

        def record_samples(name: str, i: int, samples) -> None:
            result.samples[i] = samples
            stats.queries += 1
            stats.samples_returned += len(samples)
            key = f"queries:{name}"
            stats.extra[key] = stats.extra.get(key, 0) + 1

        def scalar_updates(sampler, kind, values, weights, indices) -> None:
            for j, value in enumerate(values):
                try:
                    if kind == "delete":
                        sampler.delete(value)
                    elif weights is not None:
                        sampler.insert(value, weights[j])
                    else:
                        sampler.insert(value)
                except ReproError as exc:
                    if not capture_errors:
                        raise
                    result.errors[indices[j]] = exc

        def flush_update(name, sampler, kind, values, weights, indices) -> None:
            nonlocal bulk_calls
            bulk = getattr(sampler, kind + "_bulk", None)
            if bulk is not None:
                bulk_calls += 1
                args = (values,) if weights is None else (values, weights)
                if not capture_errors:
                    bulk(*args)
                    return
                try:
                    bulk(*args)
                    return
                except ReproError:
                    # The bulk paths validate before mutating, so nothing
                    # was applied; replay scalar-wise to attribute the
                    # failure to the exact offending ops.
                    pass
            scalar_updates(sampler, kind, values, weights, indices)

        def flush_samples(name, sampler, indices) -> None:
            nonlocal read_bulk_calls
            many = getattr(sampler, "sample_bulk_many", None)
            if many is not None:
                group = [(stream[i].lo, stream[i].hi, stream[i].t) for i in indices]
                seeds = [stream[i].seed for i in indices]
                try:
                    if any(s is not None for s in seeds):
                        group_results = _call_many(sampler, many, group, seeds)
                    else:
                        group_results = many(group)
                except ReproError:
                    if not capture_errors:
                        raise
                else:
                    read_bulk_calls += 1
                    for i, samples in zip(indices, group_results):
                        record_samples(name, i, samples)
                    return
                # Fall through: replay per op so errors attach per request.
                # Seeded ops re-derive their generators from their seeds, so
                # the replay returns exactly what a lone call would have.
            bulk = getattr(sampler, "sample_bulk", None)
            for i in indices:
                op = stream[i]
                try:
                    samples = _exec_sample(sampler, bulk, op.lo, op.hi, op.t, op.seed)
                except ReproError as exc:
                    if not capture_errors:
                        raise
                    result.errors[i] = exc
                else:
                    record_samples(name, i, samples)

        def flush_counts(name, sampler, indices) -> None:
            nonlocal read_bulk_calls
            peek = getattr(sampler, "peek_counts", None)
            if peek is not None:
                try:
                    counts = peek([(stream[i].lo, stream[i].hi) for i in indices])
                except ReproError:
                    if not capture_errors:
                        raise
                else:
                    read_bulk_calls += 1
                    for i, k in zip(indices, counts):
                        result.samples[i] = int(k)
                    return
            for i in indices:
                op = stream[i]
                try:
                    result.samples[i] = sampler.count(op.lo, op.hi)
                except ReproError as exc:
                    if not capture_errors:
                        raise
                    result.errors[i] = exc

        def flush(name: str) -> None:
            run = pending.pop(name, None)
            if run is None:
                return
            sampler = self._structures[name]
            kind = run[0]
            if kind in ("insert", "delete"):
                flush_update(name, sampler, kind, run[1], run[2], run[3])
            elif kind == "sample":
                flush_samples(name, sampler, run[1])
            else:
                flush_counts(name, sampler, run[1])

        def exec_scenario(name: str, i: int, op: BatchOp) -> None:
            """Run one scenario read (stratified / sample_wr / estimate)."""
            sampler = self._structures[name]
            try:
                if op.kind == "stratified":
                    from ..scenarios.stratified import sample_stratified

                    blocks = sample_stratified(
                        sampler, op.strata, op.t, seed=op.seed
                    )
                    result.samples[i] = blocks
                    stats.samples_returned += sum(len(b) for b in blocks)
                elif op.kind == "sample_wr":
                    from ..core.without_replacement import (
                        sample_without_replacement_bulk,
                    )

                    block = sample_without_replacement_bulk(
                        sampler, op.lo, op.hi, op.t, seed=op.seed
                    )
                    result.samples[i] = block
                    stats.samples_returned += len(block)
                else:  # estimate
                    from ..scenarios.estimate import adaptive_estimate

                    outcome = adaptive_estimate(
                        sampler, op.lo, op.hi,
                        target_half_width=op.target, confidence=op.confidence,
                        batch=op.batch_draws, max_draws=op.max_draws,
                        seed=op.seed,
                    )
                    result.samples[i] = outcome
                    stats.samples_returned += outcome.draws
            except ReproError as exc:
                if not capture_errors:
                    raise
                result.errors[i] = exc
                return
            stats.queries += 1
            key = f"queries:{name}"
            stats.extra[key] = stats.extra.get(key, 0) + 1

        clock = time.perf_counter
        start = clock()
        for i, op in enumerate(stream):
            if capture_errors and result.errors[i] is not None:
                continue  # refused upfront; its batch-mates still run
            name = op.structure
            run = pending.get(name)
            if op.kind in _SCENARIO_KINDS:
                # Scenario reads execute immediately (never coalesced) but
                # still order against pending writes to their structure.
                flush(name)
                exec_scenario(name, i, op)
                continue
            if op.kind in ("sample", "count"):
                if op.kind == "count":
                    count_ops += 1
                if coalesce_reads:
                    if run is not None and run[0] != op.kind:
                        flush(name)
                        run = None
                    if run is None:
                        pending[name] = run = (op.kind, [])
                    run[1].append(i)
                    continue
                flush(name)
                sampler = self._structures[name]
                if op.kind == "count":
                    try:
                        result.samples[i] = sampler.count(op.lo, op.hi)
                    except ReproError as exc:
                        if not capture_errors:
                            raise
                        result.errors[i] = exc
                    continue
                bulk = getattr(sampler, "sample_bulk", None)
                try:
                    samples = _exec_sample(sampler, bulk, op.lo, op.hi, op.t, op.seed)
                except ReproError as exc:
                    if not capture_errors:
                        raise
                    result.errors[i] = exc
                else:
                    record_samples(name, i, samples)
                continue
            updates += 1
            if run is not None and run[0] != op.kind:
                flush(name)
                run = None
            if run is None:
                needs_weights = op.kind == "insert" and op.weight is not None
                run = (op.kind, [], [] if needs_weights else None, [])
                pending[name] = run
            run[1].append(op.value)
            run[3].append(i)
            if run[2] is not None:
                run[2].append(1.0 if op.weight is None else op.weight)
            elif op.kind == "insert" and op.weight is not None:
                # A weighted insert joined an unweighted run: backfill.
                pending[name] = (
                    run[0], run[1], [1.0] * (len(run[1]) - 1) + [op.weight], run[3]
                )
        for name in list(pending):
            flush(name)
        result.elapsed_seconds = clock() - start
        stats.extra["updates"] = updates
        stats.extra["bulk_update_calls"] = bulk_calls
        if count_ops:
            stats.extra["counts"] = count_ops
        if coalesce_reads:
            stats.extra["read_bulk_calls"] = read_bulk_calls
        return result

    def run_means(self, queries: Sequence[BatchQuery | tuple]) -> list[float]:
        """Convenience for online aggregation: per-query sample means.

        Empty results (``t == 0``) yield ``nan`` rather than raising.
        """
        result = self.run(queries)
        means: list[float] = []
        for samples in result.samples:
            if len(samples) == 0:
                means.append(float("nan"))
            elif _np is not None:
                means.append(float(_np.mean(samples)))
            else:  # pragma: no cover - numpy is installed in CI
                means.append(sum(samples) / len(samples))
        return means

    def run_stratified(
        self, strata: Sequence, t: int, *, structure: str = DEFAULT_STRUCTURE,
        seed=None,
    ) -> list:
        """One stratified draw: ``t`` split exactly across ``strata``.

        Thin wrapper over :func:`repro.scenarios.sample_stratified` against
        a registered structure; returns the per-stratum sample blocks.
        """
        result = self.run_mixed(
            [BatchOp.stratified(strata, t, structure=structure, seed=seed)]
        )
        return result.samples[0]

    def run_without_replacement(
        self, lo: float, hi: float, t: int, *,
        structure: str = DEFAULT_STRUCTURE, seed=None,
    ):
        """One without-replacement bulk draw (``t`` distinct in-range points).

        Thin wrapper over
        :func:`repro.core.sample_without_replacement_bulk` against a
        registered structure.
        """
        result = self.run_mixed(
            [BatchOp.sample_wr(lo, hi, t, structure=structure, seed=seed)]
        )
        return result.samples[0]

    def run_estimate(
        self, lo: float, hi: float, *, target: float, confidence: float = 0.95,
        batch: int = 256, max_draws: int = 65536,
        structure: str = DEFAULT_STRUCTURE, seed=None,
    ):
        """One adaptive mean estimate; returns the
        :class:`~repro.scenarios.EstimateResult`."""
        result = self.run_mixed([
            BatchOp.estimate(
                lo, hi, target=target, confidence=confidence, batch=batch,
                max_draws=max_draws, structure=structure, seed=seed,
            )
        ])
        return result.samples[0]
