"""The batch engine: group, vectorize and account for many queries at once.

Design notes
------------
* A :class:`BatchQuery` names its target structure by key so one runner can
  front a fleet of samplers (e.g. one per shard or per tenant); the common
  single-structure case uses the implicit ``"default"`` key.
* Queries are grouped per structure before execution so each structure's
  bulk path runs back-to-back (warm caches, one side-stream generator), but
  results always come back aligned with the input order.
* Structures without a ``sample_bulk`` method degrade gracefully to their
  scalar ``sample`` loop — every :class:`~repro.core.base.RangeSampler` is
  batchable, just not always vectorized.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.base import RangeSampler
from ..errors import InvalidQueryError, KeyNotFoundError
from ..types import QueryStats

try:  # NumPy is optional at runtime; scalar fallbacks return lists.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in CI
    _np = None

__all__ = ["BatchQuery", "BatchResult", "BatchQueryRunner", "DEFAULT_STRUCTURE"]

DEFAULT_STRUCTURE = "default"


@dataclass(frozen=True, slots=True)
class BatchQuery:
    """One range-sampling request inside a batch."""

    lo: float
    hi: float
    t: int
    structure: str = DEFAULT_STRUCTURE


@dataclass(slots=True)
class BatchResult:
    """Outcome of one :meth:`BatchQueryRunner.run` call.

    ``samples[i]`` holds the samples of the ``i``-th input query (a NumPy
    array on the vectorized paths, a list on scalar fallbacks).  ``stats``
    aggregates across the whole batch; ``stats.extra`` records the number
    of queries routed to each structure under ``"queries:<name>"`` keys.
    """

    samples: list = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    elapsed_seconds: float = 0.0

    @property
    def total_samples(self) -> int:
        """Total samples returned across the batch."""
        return self.stats.samples_returned

    @property
    def queries_per_second(self) -> float:
        """Batch throughput (0.0 when the batch was empty or instant)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.stats.queries / self.elapsed_seconds


def _normalize(query) -> BatchQuery:
    if isinstance(query, BatchQuery):
        return query
    try:
        if len(query) == 3:
            lo, hi, t = query
            return BatchQuery(float(lo), float(hi), int(t))
        if len(query) == 4:
            lo, hi, t, structure = query
            return BatchQuery(float(lo), float(hi), int(t), str(structure))
    except (TypeError, ValueError):
        pass
    raise InvalidQueryError(
        f"expected BatchQuery or (lo, hi, t[, structure]) tuple, got {query!r}"
    )


class BatchQueryRunner:
    """Execute many ``(lo, hi, t)`` queries through the vectorized paths.

    Parameters
    ----------
    structures:
        Either a single sampler (registered under ``"default"``) or a
        mapping ``name -> sampler``.  Any object satisfying the
        :class:`~repro.core.base.RangeSampler` protocol works; structures
        exposing ``sample_bulk`` get the vectorized treatment.
    """

    def __init__(
        self, structures: RangeSampler | Mapping[str, RangeSampler]
    ) -> None:
        if isinstance(structures, Mapping):
            self._structures = dict(structures)
        else:
            self._structures = {DEFAULT_STRUCTURE: structures}
        if not self._structures:
            raise ValueError("BatchQueryRunner needs at least one structure")

    @property
    def structures(self) -> Mapping[str, RangeSampler]:
        """The registered structures (read-only view by convention)."""
        return self._structures

    def run(self, queries: Sequence[BatchQuery | tuple]) -> BatchResult:
        """Execute the batch and return order-aligned samples plus stats."""
        batch = [_normalize(q) for q in queries]
        result = BatchResult(samples=[None] * len(batch))
        stats = result.stats
        # Group query indices per structure, preserving submission order
        # within each group.
        groups: dict[str, list[int]] = {}
        for i, q in enumerate(batch):
            groups.setdefault(q.structure, []).append(i)
        # Resolve every structure before executing anything so an unknown
        # name fails atomically — no group runs (mutating sampler RNG state
        # and stats) only for the batch to abort midway.
        for name in groups:
            if name not in self._structures:
                raise KeyNotFoundError(f"unknown structure: {name!r}")
        clock = time.perf_counter
        start = clock()
        for name, indices in groups.items():
            sampler = self._structures[name]
            bulk = getattr(sampler, "sample_bulk", None)
            for i in indices:
                q = batch[i]
                if bulk is not None:
                    samples = bulk(q.lo, q.hi, q.t)
                else:
                    samples = sampler.sample(q.lo, q.hi, q.t)
                result.samples[i] = samples
                stats.samples_returned += len(samples)
            stats.queries += len(indices)
            key = f"queries:{name}"
            stats.extra[key] = stats.extra.get(key, 0) + len(indices)
        result.elapsed_seconds = clock() - start
        return result

    def run_means(self, queries: Sequence[BatchQuery | tuple]) -> list[float]:
        """Convenience for online aggregation: per-query sample means.

        Empty results (``t == 0``) yield ``nan`` rather than raising.
        """
        result = self.run(queries)
        means: list[float] = []
        for samples in result.samples:
            if len(samples) == 0:
                means.append(float("nan"))
            elif _np is not None:
                means.append(float(_np.mean(samples)))
            else:  # pragma: no cover - numpy is installed in CI
                means.append(sum(samples) / len(samples))
        return means
