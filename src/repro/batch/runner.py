"""The batch engine: group, vectorize and account for many queries at once.

Design notes
------------
* A :class:`BatchQuery` names its target structure by key so one runner can
  front a fleet of samplers (e.g. one per shard or per tenant); the common
  single-structure case uses the implicit ``"default"`` key.
* Queries are grouped per structure before execution so each structure's
  bulk path runs back-to-back (warm caches, one side-stream generator), but
  results always come back aligned with the input order.
* Structures without a ``sample_bulk`` method degrade gracefully to their
  scalar ``sample`` loop — every :class:`~repro.core.base.RangeSampler` is
  batchable, just not always vectorized.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.base import RangeSampler
from ..errors import InvalidQueryError, KeyNotFoundError
from ..types import QueryStats

try:  # NumPy is optional at runtime; scalar fallbacks return lists.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in CI
    _np = None

__all__ = [
    "BatchQuery",
    "BatchOp",
    "BatchResult",
    "MixedResult",
    "BatchQueryRunner",
    "DEFAULT_STRUCTURE",
]

DEFAULT_STRUCTURE = "default"


@dataclass(frozen=True, slots=True)
class BatchQuery:
    """One range-sampling request inside a batch."""

    lo: float
    hi: float
    t: int
    structure: str = DEFAULT_STRUCTURE


@dataclass(frozen=True, slots=True)
class BatchOp:
    """One operation inside a mixed read/write stream.

    ``kind`` is ``"insert"``, ``"delete"`` or ``"sample"``; use the
    constructors below rather than filling fields positionally.
    """

    kind: str
    value: float = 0.0
    weight: float | None = None
    lo: float = 0.0
    hi: float = 0.0
    t: int = 0
    structure: str = DEFAULT_STRUCTURE

    @classmethod
    def insert(
        cls, value: float, weight: float | None = None, structure: str = DEFAULT_STRUCTURE
    ) -> "BatchOp":
        """An insertion (``weight`` only meaningful on weighted samplers)."""
        return cls("insert", value=float(value), weight=weight, structure=structure)

    @classmethod
    def delete(cls, value: float, structure: str = DEFAULT_STRUCTURE) -> "BatchOp":
        """A deletion of one occurrence of ``value``."""
        return cls("delete", value=float(value), structure=structure)

    @classmethod
    def sample(
        cls, lo: float, hi: float, t: int, structure: str = DEFAULT_STRUCTURE
    ) -> "BatchOp":
        """A range-sampling query."""
        return cls("sample", lo=float(lo), hi=float(hi), t=int(t), structure=structure)


@dataclass(slots=True)
class MixedResult:
    """Outcome of one :meth:`BatchQueryRunner.run_mixed` call.

    ``samples[i]`` aligns with the ``i``-th input op: the samples of a
    ``sample`` op, ``None`` for updates.  ``stats.extra`` records
    ``"updates"`` (total update ops) and ``"bulk_update_calls"`` (how many
    coalesced bulk calls served them) alongside the per-structure
    ``"queries:<name>"`` counters.
    """

    samples: list = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    elapsed_seconds: float = 0.0

    @property
    def operations(self) -> int:
        """Total operations executed (updates + queries)."""
        return self.stats.queries + self.stats.extra.get("updates", 0)

    @property
    def ops_per_second(self) -> float:
        """Stream throughput (0.0 when the stream was empty or instant)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.operations / self.elapsed_seconds


@dataclass(slots=True)
class BatchResult:
    """Outcome of one :meth:`BatchQueryRunner.run` call.

    ``samples[i]`` holds the samples of the ``i``-th input query (a NumPy
    array on the vectorized paths, a list on scalar fallbacks).  ``stats``
    aggregates across the whole batch; ``stats.extra`` records the number
    of queries routed to each structure under ``"queries:<name>"`` keys.
    """

    samples: list = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    elapsed_seconds: float = 0.0

    @property
    def total_samples(self) -> int:
        """Total samples returned across the batch."""
        return self.stats.samples_returned

    @property
    def queries_per_second(self) -> float:
        """Batch throughput (0.0 when the batch was empty or instant)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.stats.queries / self.elapsed_seconds


def _normalize(query) -> BatchQuery:
    if isinstance(query, BatchQuery):
        return query
    try:
        if len(query) == 3:
            lo, hi, t = query
            return BatchQuery(float(lo), float(hi), int(t))
        if len(query) == 4:
            lo, hi, t, structure = query
            return BatchQuery(float(lo), float(hi), int(t), str(structure))
    except (TypeError, ValueError):
        pass
    raise InvalidQueryError(
        f"expected BatchQuery or (lo, hi, t[, structure]) tuple, got {query!r}"
    )


def _accepts_weights(sampler) -> bool:
    """True if the sampler's insert path takes a weight argument.

    Checked upfront by :meth:`BatchQueryRunner.run_mixed` so a weighted
    insert op against an unweighted structure fails as a typed error
    before any op executes, instead of a mid-stream ``TypeError``.
    """
    import inspect

    bulk = getattr(sampler, "insert_bulk", None)
    if bulk is not None:  # flush prefers the bulk path, so its signature rules
        method, param = bulk, "weights"
    else:
        method, param = getattr(sampler, "insert", None), "weight"
    if method is None:
        return False
    try:
        return param in inspect.signature(method).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtin callables
        return False


def _normalize_op(op) -> BatchOp:
    if isinstance(op, BatchOp):
        if op.kind not in ("insert", "delete", "sample"):
            raise InvalidQueryError(f"unknown op kind: {op.kind!r}")
        return op
    try:
        kind = op[0]
        if kind == "insert" and len(op) in (2, 3):
            structure = op[2] if len(op) == 3 else DEFAULT_STRUCTURE
            return BatchOp.insert(float(op[1]), structure=str(structure))
        if kind == "delete" and len(op) in (2, 3):
            structure = op[2] if len(op) == 3 else DEFAULT_STRUCTURE
            return BatchOp.delete(float(op[1]), structure=str(structure))
        if kind == "sample" and len(op) in (4, 5):
            structure = op[4] if len(op) == 5 else DEFAULT_STRUCTURE
            return BatchOp.sample(
                float(op[1]), float(op[2]), int(op[3]), structure=str(structure)
            )
    except (TypeError, ValueError, IndexError):
        pass
    raise InvalidQueryError(
        "expected BatchOp, ('insert'|'delete', value[, structure]) or "
        f"('sample', lo, hi, t[, structure]), got {op!r}"
    )


class BatchQueryRunner:
    """Execute many ``(lo, hi, t)`` queries through the vectorized paths.

    Parameters
    ----------
    structures:
        Either a single sampler (registered under ``"default"``) or a
        mapping ``name -> sampler``.  Any object satisfying the
        :class:`~repro.core.base.RangeSampler` protocol works; structures
        exposing ``sample_bulk`` get the vectorized treatment.
    """

    def __init__(
        self, structures: RangeSampler | Mapping[str, RangeSampler]
    ) -> None:
        if isinstance(structures, Mapping):
            self._structures = dict(structures)
        else:
            self._structures = {DEFAULT_STRUCTURE: structures}
        if not self._structures:
            raise ValueError("BatchQueryRunner needs at least one structure")

    @property
    def structures(self) -> Mapping[str, RangeSampler]:
        """The registered structures (read-only view by convention)."""
        return self._structures

    def _group(self, batch: Sequence[BatchQuery]) -> dict[str, list[int]]:
        """Group query indices per structure, preserving submission order.

        Every structure name is resolved before anything executes so an
        unknown name fails atomically — no group runs (mutating sampler
        RNG state and stats) only for the batch to abort midway.
        """
        groups: dict[str, list[int]] = {}
        for i, q in enumerate(batch):
            groups.setdefault(q.structure, []).append(i)
        for name in groups:
            if name not in self._structures:
                raise KeyNotFoundError(f"unknown structure: {name!r}")
        return groups

    def run(self, queries: Sequence[BatchQuery | tuple]) -> BatchResult:
        """Execute the batch and return order-aligned samples plus stats."""
        batch = [_normalize(q) for q in queries]
        result = BatchResult(samples=[None] * len(batch))
        stats = result.stats
        groups = self._group(batch)
        clock = time.perf_counter
        start = clock()
        for name, indices in groups.items():
            sampler = self._structures[name]
            many = getattr(sampler, "sample_bulk_many", None)
            if many is not None:
                # Scatter-gather structures take the whole group in one
                # call, so worker dispatch is amortized across the batch.
                group_results = many(
                    [(batch[i].lo, batch[i].hi, batch[i].t) for i in indices]
                )
                for i, samples in zip(indices, group_results):
                    result.samples[i] = samples
                    stats.samples_returned += len(samples)
            else:
                bulk = getattr(sampler, "sample_bulk", None)
                for i in indices:
                    q = batch[i]
                    if bulk is not None:
                        samples = bulk(q.lo, q.hi, q.t)
                    else:
                        samples = sampler.sample(q.lo, q.hi, q.t)
                    result.samples[i] = samples
                    stats.samples_returned += len(samples)
            stats.queries += len(indices)
            key = f"queries:{name}"
            stats.extra[key] = stats.extra.get(key, 0) + len(indices)
        result.elapsed_seconds = clock() - start
        return result

    def run_counts(self, queries: Sequence) -> list[int]:
        """Resolve many count-only queries through the vectorized probes.

        ``queries`` are ``(lo, hi[, structure])`` tuples (or
        :class:`BatchQuery` instances whose ``t`` is ignored).  Structures
        exposing ``peek_counts`` answer their whole group with one
        vectorized multi-range probe; the rest fall back to per-query
        ``count``.  Results align with the input order.
        """
        batch: list[BatchQuery] = []
        for query in queries:
            if isinstance(query, BatchQuery):
                batch.append(query)
            else:
                try:
                    if len(query) == 2:
                        lo, hi = query
                        batch.append(BatchQuery(float(lo), float(hi), 0))
                        continue
                    if len(query) == 3 and isinstance(query[2], str):
                        lo, hi, structure = query
                        batch.append(BatchQuery(float(lo), float(hi), 0, structure))
                        continue
                    batch.append(_normalize(query))
                    continue
                except (TypeError, ValueError, InvalidQueryError):
                    pass
                raise InvalidQueryError(
                    f"expected (lo, hi[, structure]) or BatchQuery, got {query!r}"
                )
        groups = self._group(batch)
        out: list[int] = [0] * len(batch)
        for name, indices in groups.items():
            sampler = self._structures[name]
            peek = getattr(sampler, "peek_counts", None)
            if peek is not None:
                counts = peek([(batch[i].lo, batch[i].hi) for i in indices])
                for i, k in zip(indices, counts):
                    out[i] = int(k)
            else:
                for i in indices:
                    out[i] = sampler.count(batch[i].lo, batch[i].hi)
        return out

    def run_mixed(self, ops: Sequence[BatchOp | tuple]) -> MixedResult:
        """Execute a mixed insert/delete/sample stream in submission order.

        Runs of consecutive same-kind updates to the same structure are
        coalesced into one ``insert_bulk``/``delete_bulk`` call (falling
        back to the scalar loop on structures without a bulk path), flushed
        whenever the run breaks — a different update kind, a query against
        that structure, or the end of the stream.  Coalescing preserves the
        stream's semantics exactly: no update is reordered across an update
        of the other kind or across a query that could observe it.

        A failed bulk delete (absent value) raises after the updates that
        preceded its run were applied; the failing bulk call itself is
        atomic on structures with a bulk path.
        """
        stream = [_normalize_op(op) for op in ops]
        result = MixedResult(samples=[None] * len(stream))
        stats = result.stats
        weight_ok: dict[str, bool] = {}  # signature inspection, once per structure
        for op in stream:
            if op.structure not in self._structures:
                raise KeyNotFoundError(f"unknown structure: {op.structure!r}")
            if op.kind != "sample":
                sampler = self._structures[op.structure]
                if (
                    getattr(sampler, op.kind, None) is None
                    and getattr(sampler, op.kind + "_bulk", None) is None
                ):
                    raise InvalidQueryError(
                        f"structure {op.structure!r} does not support {op.kind}"
                    )
                if op.kind == "insert" and op.weight is not None:
                    ok = weight_ok.get(op.structure)
                    if ok is None:
                        ok = weight_ok[op.structure] = _accepts_weights(sampler)
                    if not ok:
                        raise InvalidQueryError(
                            f"structure {op.structure!r} does not accept "
                            "weighted inserts"
                        )
        # Per-structure pending update run: (kind, values, weights | None).
        pending: dict[str, tuple[str, list, list | None]] = {}
        bulk_calls = 0
        updates = 0

        def flush(name: str) -> None:
            nonlocal bulk_calls
            run = pending.pop(name, None)
            if run is None:
                return
            kind, values, weights = run
            sampler = self._structures[name]
            if kind == "insert":
                bulk = getattr(sampler, "insert_bulk", None)
                if bulk is not None:
                    bulk_calls += 1
                    if weights is not None:
                        bulk(values, weights)
                    else:
                        bulk(values)
                elif weights is not None:
                    for value, weight in zip(values, weights):
                        sampler.insert(value, weight)
                else:
                    for value in values:
                        sampler.insert(value)
            else:
                bulk = getattr(sampler, "delete_bulk", None)
                if bulk is not None:
                    bulk_calls += 1
                    bulk(values)
                else:
                    for value in values:
                        sampler.delete(value)

        clock = time.perf_counter
        start = clock()
        for i, op in enumerate(stream):
            name = op.structure
            if op.kind == "sample":
                flush(name)
                sampler = self._structures[name]
                bulk = getattr(sampler, "sample_bulk", None)
                if bulk is not None:
                    samples = bulk(op.lo, op.hi, op.t)
                else:
                    samples = sampler.sample(op.lo, op.hi, op.t)
                result.samples[i] = samples
                stats.queries += 1
                stats.samples_returned += len(samples)
                key = f"queries:{name}"
                stats.extra[key] = stats.extra.get(key, 0) + 1
                continue
            updates += 1
            run = pending.get(name)
            if run is not None and run[0] != op.kind:
                flush(name)
                run = None
            if run is None:
                needs_weights = op.kind == "insert" and op.weight is not None
                run = (op.kind, [], [] if needs_weights else None)
                pending[name] = run
            run[1].append(op.value)
            if run[2] is not None:
                run[2].append(1.0 if op.weight is None else op.weight)
            elif op.kind == "insert" and op.weight is not None:
                # A weighted insert joined an unweighted run: backfill.
                pending[name] = (run[0], run[1], [1.0] * (len(run[1]) - 1) + [op.weight])
        for name in list(pending):
            flush(name)
        result.elapsed_seconds = clock() - start
        stats.extra["updates"] = updates
        stats.extra["bulk_update_calls"] = bulk_calls
        return result

    def run_means(self, queries: Sequence[BatchQuery | tuple]) -> list[float]:
        """Convenience for online aggregation: per-query sample means.

        Empty results (``t == 0``) yield ``nan`` rather than raising.
        """
        result = self.run(queries)
        means: list[float] = []
        for samples in result.samples:
            if len(samples) == 0:
                means.append(float("nan"))
            elif _np is not None:
                means.append(float(_np.mean(samples)))
            else:  # pragma: no cover - numpy is installed in CI
                means.append(sum(samples) / len(samples))
        return means
