"""Shared statistical acceptance gates for the test suite.

Every statistical gate in this repo follows the same policy, collected here
so the suites stop re-implementing it:

* **Fixed significance levels.**  Honest samplers must clear ``ALPHA``
  (they land orders of magnitude above it); deliberately broken negative
  controls must fall below ``NEGATIVE_ALPHA``.  The two-orders gap between
  the thresholds is what keeps the gates non-flaky: there is no
  distribution an implementation could have that sits between them by
  chance.

* **Seeded retry-once.**  A level-``ALPHA`` gate still false-alarms on an
  honest sampler with probability ``ALPHA`` per run.  Each gate therefore
  accepts a *draw function* taking the attempt index (0 then 1) and, on a
  first failure, re-draws once — the caller derives fresh randomness from
  the attempt index (or relies on the sampler's own RNG state advancing).
  The false-alarm rate drops to ``ALPHA**2`` while a genuinely biased
  sampler, whose p-values sit at ``~0`` on every draw, still fails both.
"""

from __future__ import annotations

from repro.stats import (
    chi_square_gof,
    ks_uniform_test,
    repeated_query_test,
    uniformity_test,
    within_query_test,
)

# Honest samplers must beat this; negative controls must fall far below.
ALPHA = 1e-4
NEGATIVE_ALPHA = 1e-6

__all__ = [
    "ALPHA",
    "NEGATIVE_ALPHA",
    "stat_gate",
    "uniformity_gate",
    "gof_gate",
    "ks_gate",
    "repeated_query_gate",
    "within_query_gate",
    "negative_control",
    "mid_range",
]


def stat_gate(draw, *, alpha: float = ALPHA, label: str = "") -> float:
    """Assert a statistical test passes, with one seeded retry.

    ``draw(attempt)`` runs the test and returns ``(stat, p_value)``;
    ``attempt`` is 0 for the first run and 1 for the retry, so the caller
    can derive distinct seeds per attempt.  Returns the passing p-value.
    """
    _stat, p = draw(0)
    if p > alpha:
        return p
    _stat, p = draw(1)
    assert p > alpha, (
        f"{label or 'statistical gate'} failed twice at alpha={alpha:g}: "
        f"p={p:.2e}"
    )
    return p


def uniformity_gate(draw_samples, population, *, alpha=ALPHA, label="") -> float:
    """Chi-square gate: ``draw_samples(attempt)`` uniform over ``population``."""
    return stat_gate(
        lambda attempt: uniformity_test(draw_samples(attempt), population),
        alpha=alpha,
        label=label,
    )


def gof_gate(draw_counts, expected, *, alpha=ALPHA, label="") -> float:
    """Chi-square goodness-of-fit gate against explicit expected masses.

    ``draw_counts(attempt)`` returns observed category counts aligned with
    ``expected`` (any positive masses; they are normalized internally).
    """
    return stat_gate(
        lambda attempt: chi_square_gof(draw_counts(attempt), expected),
        alpha=alpha,
        label=label,
    )


def ks_gate(draw_samples, lo, hi, *, alpha=ALPHA, label="") -> float:
    """KS gate: ``draw_samples(attempt)`` vs Uniform([lo, hi]), continuous data."""
    return stat_gate(
        lambda attempt: ks_uniform_test(draw_samples(attempt), lo, hi),
        alpha=alpha,
        label=label,
    )


def repeated_query_gate(
    draw_one, *, repeats=600, bins=4, alpha=ALPHA, label=""
) -> float:
    """Cross-query independence gate over repeated single-sample queries."""
    return stat_gate(
        lambda attempt: repeated_query_test(draw_one, repeats=repeats, bins=bins),
        alpha=alpha,
        label=label,
    )


def within_query_gate(draw_samples, *, bins=4, alpha=ALPHA, label="") -> float:
    """Within-query independence gate over one bulk answer per attempt."""
    return stat_gate(
        lambda attempt: within_query_test(draw_samples(attempt), bins=bins),
        alpha=alpha,
        label=label,
    )


def negative_control(draw, *, alpha: float = NEGATIVE_ALPHA, label: str = "") -> float:
    """Assert a deliberately broken implementation *fails* its test.

    No retry here: a negative control that only sometimes fails is a bug
    in the control, not noise.  Returns the (damning) p-value.
    """
    _stat, p = draw(0)
    assert p < alpha, (
        f"{label or 'negative control'} slipped through at alpha={alpha:g}: "
        f"p={p:.2e}"
    )
    return p


def mid_range(data) -> tuple[float, float]:
    """The inner-80% query range of a dataset (shared across suites)."""
    ordered = sorted(data)
    n = len(ordered)
    return ordered[n // 10], ordered[(9 * n) // 10]
