"""Unit + property tests for the Walker/Vose alias table."""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alias import AliasTable
from repro.errors import InvalidWeightError
from repro.rng import RandomSource
from repro.stats import chi_square_gof


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(InvalidWeightError):
            AliasTable([])

    def test_rejects_negative(self):
        with pytest.raises(InvalidWeightError):
            AliasTable([1.0, -0.5])

    def test_rejects_nan_and_inf(self):
        with pytest.raises(InvalidWeightError):
            AliasTable([1.0, float("nan")])
        with pytest.raises(InvalidWeightError):
            AliasTable([1.0, float("inf")])

    def test_rejects_all_zero(self):
        with pytest.raises(InvalidWeightError):
            AliasTable([0.0, 0.0])

    def test_total_is_sum(self):
        table = AliasTable([1.0, 2.0, 3.0])
        assert table.total == pytest.approx(6.0)

    def test_len(self):
        assert len(AliasTable([1.0, 2.0])) == 2


class TestExactMass:
    """probability() reconstructs the table; it must match the weights."""

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=40,
        ).filter(lambda ws: sum(ws) > 0)
    )
    @settings(max_examples=200)
    def test_table_mass_matches_weights(self, weights):
        table = AliasTable(weights)
        total = sum(weights)
        for i, w in enumerate(weights):
            assert table.probability(i) == pytest.approx(w / total, abs=1e-9)

    def test_zero_weight_item_never_sampled(self):
        table = AliasTable([0.0, 1.0, 0.0])
        rng = RandomSource(1)
        assert all(table.sample(rng) == 1 for _ in range(500))


class TestSamplingDistribution:
    def test_single_item(self):
        table = AliasTable([5.0])
        rng = RandomSource(2)
        assert table.sample(rng) == 0

    def test_uniform_weights_chi_square(self):
        table = AliasTable([1.0] * 16)
        rng = RandomSource(3)
        counts = [0] * 16
        for _ in range(16_000):
            counts[table.sample(rng)] += 1
        _stat, p = chi_square_gof(counts, [1.0] * 16)
        assert p > 1e-4

    def test_skewed_weights_chi_square(self):
        weights = [2.0**i for i in range(10)]
        table = AliasTable(weights)
        rng = RandomSource(4)
        counts = [0] * 10
        for _ in range(40_000):
            counts[table.sample(rng)] += 1
        # Merge the tiny-expectation low bins for a well-posed GOF test.
        merged_counts = [sum(counts[:6]), *counts[6:]]
        merged_weights = [sum(weights[:6]), *weights[6:]]
        _stat, p = chi_square_gof(merged_counts, merged_weights)
        assert p > 1e-4

    def test_extreme_skew_is_stable(self):
        table = AliasTable([1e-12, 1.0, 1e12])
        rng = RandomSource(5)
        counts = [0, 0, 0]
        for _ in range(1000):
            counts[table.sample(rng)] += 1
        assert counts[2] == 1000  # mass ratio 1e12 swamps everything

    def test_sample_many_matches_repeated_sample(self):
        weights = [3.0, 1.0, 2.0]
        table = AliasTable(weights)
        rng_a = RandomSource(6)
        rng_b = RandomSource(6)
        bulk = table.sample_many(rng_a, 50)
        singles = [table.sample(rng_b) for _ in range(50)]
        assert bulk == singles

    def test_sample_draw_cost_is_constant(self):
        """Exactly two primitive draws per sample, regardless of size."""
        for m in (1, 10, 1000):
            table = AliasTable([1.0] * m)
            rng = RandomSource(7)
            table.sample(rng)
            assert rng.draws == 2
