"""Tests for the command-line interface."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.cli import build_structure, main, read_floats


@pytest.fixture()
def data_file(tmp_path):
    path = tmp_path / "points.txt"
    path.write_text("\n".join(str(float(i)) for i in range(100)))
    return str(path)


@pytest.fixture()
def weight_file(tmp_path):
    path = tmp_path / "weights.txt"
    path.write_text("\n".join(str(1.0 + i % 3) for i in range(100)))
    return str(path)


class TestHelpers:
    def test_read_floats(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("1.5 2\n3e2\t4")
        assert read_floats(str(path)) == [1.5, 2.0, 300.0, 4.0]

    def test_build_structure_all_names(self):
        values = [1.0, 2.0, 3.0]
        for name in ("static", "dynamic", "weighted", "weighted-dynamic", "external"):
            s = build_structure(name, values, None, seed=1, block_size=4)
            assert s.count(0.0, 5.0) == 3

    def test_build_structure_unknown(self):
        with pytest.raises(ValueError):
            build_structure("nope", [1.0], None, None, 4)


class TestCommands:
    def test_count(self, capsys, data_file):
        assert main(["count", "--data", data_file, "--lo", "10", "--hi", "19"]) == 0
        assert capsys.readouterr().out.strip() == "10"

    def test_sample(self, capsys, data_file):
        main(
            ["sample", "--data", data_file, "--lo", "10", "--hi", "19",
             "-t", "5", "--seed", "3"]
        )
        values = [float(line) for line in capsys.readouterr().out.split()]
        assert len(values) == 5
        assert all(10.0 <= v <= 19.0 for v in values)

    def test_sample_deterministic_with_seed(self, capsys, data_file):
        args = ["sample", "--data", data_file, "--lo", "0", "--hi", "99",
                "-t", "8", "--seed", "11"]
        main(args)
        first = capsys.readouterr().out
        main(args)
        assert capsys.readouterr().out == first

    def test_report(self, capsys, data_file):
        main(["report", "--data", data_file, "--lo", "97", "--hi", "200"])
        assert capsys.readouterr().out.split() == ["97.0", "98.0", "99.0"]

    def test_mean(self, capsys, data_file):
        main(["mean", "--data", data_file, "--lo", "0", "--hi", "99",
              "-t", "400", "--seed", "5"])
        out = capsys.readouterr().out
        assert "mean=" in out and "K=100" in out

    def test_weighted_structure(self, capsys, data_file, weight_file):
        main(
            ["sample", "--data", data_file, "--weights", weight_file,
             "--structure", "weighted", "--lo", "0", "--hi", "99",
             "-t", "4", "--seed", "6"]
        )
        assert len(capsys.readouterr().out.split()) == 4

    def test_external_structure(self, capsys, data_file):
        main(
            ["count", "--data", data_file, "--structure", "external",
             "--block-size", "16", "--lo", "5", "--hi", "14"]
        )
        assert capsys.readouterr().out.strip() == "10"

    def test_batch(self, capsys, data_file, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text("10 19 100\n0 99\n# a comment line\n\n40 49 50\n")
        assert main(
            ["batch", "--data", data_file, "--queries", str(queries),
             "-t", "20", "--seed", "3"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4  # three query means + one aggregate line
        assert 10.0 <= float(lines[0]) <= 19.0
        assert 0.0 <= float(lines[1]) <= 99.0
        assert 40.0 <= float(lines[2]) <= 49.0
        assert lines[3].startswith("# queries=3 samples=170 ")

    def test_batch_dynamic_structure(self, capsys, data_file, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text("5 95 64\n")
        assert main(
            ["batch", "--data", data_file, "--queries", str(queries),
             "--structure", "dynamic", "--seed", "5"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert 5.0 <= float(lines[0]) <= 95.0

    def test_batch_malformed_query_file(self, data_file, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text("1 2 3 4 5\n")
        with pytest.raises(ValueError):
            main(["batch", "--data", data_file, "--queries", str(queries)])

    def test_batch_ops_stream(self, capsys, data_file, tmp_path):
        ops = tmp_path / "ops.txt"
        ops.write_text(
            "insert 100.5\ninsert 101.5\nsample 100 102 50\n"
            "delete 100.5\n# comment\nsample 100 102\n"
        )
        assert main(
            ["batch", "--data", data_file, "--structure", "dynamic",
             "--ops", str(ops), "-t", "10", "--seed", "7"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3  # two query means + one aggregate line
        assert 100.0 <= float(lines[0]) <= 102.0
        assert float(lines[1]) == 101.5  # only 101.5 remains in [100, 102]
        assert lines[2].startswith("# ops=5 queries=2 updates=3 bulk_calls=")
        assert "samples=60" in lines[2]

    def test_batch_ops_weighted_dynamic(self, capsys, data_file, weight_file, tmp_path):
        ops = tmp_path / "ops.txt"
        # 'insert V W' routes the weight through the weighted bulk path; a
        # heavy weight on 101.5 must dominate the sample mean of [100, 102].
        ops.write_text(
            "insert 100.5 1.0\ninsert 101.5 10000.0\nsample 100 102 200\n"
            "delete 100.5\nsample 100 102\n"
        )
        assert main(
            ["batch", "--data", data_file, "--weights", weight_file,
             "--structure", "weighted-dynamic", "--ops", str(ops),
             "-t", "10", "--seed", "7"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert float(lines[0]) > 101.0  # weight 10000 pulls the mean up
        assert float(lines[1]) == 101.5
        assert lines[2].startswith("# ops=5 queries=2 updates=3")

    def test_batch_ops_weighted_insert_rejected_on_unweighted(
        self, data_file, tmp_path
    ):
        from repro import InvalidQueryError

        ops = tmp_path / "ops.txt"
        ops.write_text("insert 1.0 5.0\n")
        with pytest.raises(InvalidQueryError):
            main(["batch", "--data", data_file, "--structure", "dynamic",
                  "--ops", str(ops)])

    def test_batch_ops_malformed_file(self, data_file, tmp_path):
        ops = tmp_path / "ops.txt"
        ops.write_text("upsert 1.0\n")
        with pytest.raises(ValueError):
            main(["batch", "--data", data_file, "--structure", "dynamic",
                  "--ops", str(ops)])

    def test_batch_queries_and_ops_exclusive(self, data_file, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text("1 2\n")
        with pytest.raises(SystemExit):
            main(["batch", "--data", data_file, "--queries", str(queries),
                  "--ops", str(queries)])


def test_module_entry_point(data_file):
    result = subprocess.run(
        [sys.executable, "-m", "repro", "count", "--data", data_file,
         "--lo", "0", "--hi", "49"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert result.stdout.strip() == "50"


class TestShardedCLI:
    """The --shards / --backend flags build a ShardedIRS facade."""

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_count_and_sample_sharded(self, capsys, data_file, backend):
        assert main(["count", "--data", data_file, "--lo", "10", "--hi", "19",
                     "--shards", "3", "--backend", backend]) == 0
        assert capsys.readouterr().out.strip() == "10"
        assert main(["sample", "--data", data_file, "--lo", "10", "--hi", "19",
                     "-t", "5", "--seed", "7", "--structure", "dynamic",
                     "--shards", "3", "--backend", backend]) == 0
        values = [float(line) for line in capsys.readouterr().out.split()]
        assert len(values) == 5
        assert all(10.0 <= v <= 19.0 for v in values)

    def test_batch_sharded_matches_flat_counts(self, capsys, data_file, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text("10 19 64\n0 99 32\n")
        assert main(["batch", "--data", data_file, "--queries", str(queries),
                     "--shards", "4", "--structure", "dynamic", "--seed", "3"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert len(out) == 3 and out[-1].startswith("# queries=2 samples=96")

    def test_weighted_sharded_defaults_unit_weights(self, capsys, data_file):
        # No --weights file: the sharded weighted facade must default to
        # unit masses exactly like the flat constructor path.
        assert main(["mean", "--data", data_file, "--lo", "0", "--hi", "99",
                     "-t", "50", "--structure", "weighted", "--shards", "4",
                     "--seed", "1"]) == 0
        assert "K=100" in capsys.readouterr().out

    def test_build_structure_sharded_kinds(self):
        values = [float(i) for i in range(64)]
        for name in ("static", "dynamic", "weighted", "weighted-dynamic",
                     "external"):
            s = build_structure(name, values, None, seed=1, block_size=8,
                                shards=4)
            assert s.count(0.0, 100.0) == 64
            s.close()

    def test_weighted_dynamic_sharded_with_weights(
        self, capsys, data_file, weight_file
    ):
        assert main(["sample", "--data", data_file, "--weights", weight_file,
                     "--structure", "weighted-dynamic", "--shards", "3",
                     "--lo", "10", "--hi", "19", "-t", "6", "--seed", "2"]) == 0
        values = [float(line) for line in capsys.readouterr().out.split()]
        assert len(values) == 6
        assert all(10.0 <= v <= 19.0 for v in values)


class TestServeCLI:
    """The serve subcommand accepts every structure kind, weighted included."""

    def test_serve_offline_weighted_dynamic(
        self, capsys, data_file, weight_file, tmp_path
    ):
        import json

        requests = tmp_path / "requests.txt"
        requests.write_text(
            '{"id": 1, "op": "sample", "lo": 10, "hi": 19, "t": 4, "seed": 9}\n'
            '{"id": 2, "op": "insert", "value": 10.5, "weight": 3.5}\n'
            '{"id": 3, "op": "count", "lo": 10, "hi": 19}\n'
        )
        assert main(
            ["serve", "--data", data_file, "--weights", weight_file,
             "--structure", "weighted-dynamic", "--requests", str(requests),
             "--seed", "4"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        replies = [json.loads(line) for line in lines if not line.startswith("#")]
        assert [r["ok"] for r in replies] == [True, True, True]
        assert len(replies[0]["result"]) == 4
        assert replies[2]["result"] == 11  # 10 initial points + the insert
