"""Tests for the vectorized batch sampling engine (``repro.batch``).

Covers the three pillars the engine promises:

* statistical correctness — chi-square uniformity of ``sample_bulk`` on all
  three samplers (and weighted-proportional correctness on the weighted
  one);
* equivalence — :class:`BatchQueryRunner` returns exactly the counts the
  per-query ``sample`` path would, aligned with input order;
* cache discipline — the dynamic structure's bulk path sees every insert
  and delete (no stale NumPy views).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BatchOp,
    BatchQuery,
    BatchQueryRunner,
    DynamicIRS,
    StaticIRS,
    WeightedDynamicIRS,
    WeightedStaticIRS,
)
from repro.errors import InvalidQueryError, KeyNotFoundError
from repro.stats import chi_square_gof, uniformity_test

# Same calibration as conftest.P_PASS: honest samplers clear this by orders
# of magnitude.
P_PASS = 1e-4

SAMPLERS = ["static", "dynamic", "weighted"]


def build(kind: str, data: list[float], seed: int):
    if kind == "static":
        return StaticIRS(data, seed=seed)
    if kind == "dynamic":
        return DynamicIRS(data, seed=seed)
    return WeightedStaticIRS(data, [1.0] * len(data), seed=seed)


class TestBulkUniformity:
    @pytest.mark.parametrize("kind", SAMPLERS)
    def test_bulk_is_uniform(self, uniform_data, kind):
        sampler = build(kind, uniform_data, seed=71)
        lo, hi = 0.30, 0.45
        population = sampler.report(lo, hi)
        samples = sampler.sample_bulk(lo, hi, 20 * len(population))
        assert ((samples >= lo) & (samples <= hi)).all()
        _stat, p = uniformity_test(samples.tolist(), population)
        assert p > P_PASS

    def test_dynamic_bulk_uniform_on_wide_range(self, uniform_data):
        # Small t over a wide range forces the PMA rejection middle path.
        sampler = DynamicIRS(uniform_data, seed=72)
        lo, hi = 0.05, 0.95
        collected = np.concatenate(
            [sampler.sample_bulk(lo, hi, 8) for _ in range(2500)]
        )
        _stat, p = uniformity_test(collected.tolist(), sampler.report(lo, hi))
        assert p > P_PASS

    def test_weighted_bulk_is_proportional(self):
        values = [float(i) for i in range(64)]
        weights = [float(i % 8 + 1) for i in range(64)]
        sampler = WeightedStaticIRS(values, weights, seed=73)
        ranks = sampler.sample_ranks_bulk(10.0, 53.0, 40_000)
        a, b = sampler.rank_range(10.0, 53.0)
        assert ((ranks >= a) & (ranks < b)).all()
        counts = np.bincount(ranks - a, minlength=b - a)
        _stat, p = chi_square_gof(counts.tolist(), weights[a:b])
        assert p > P_PASS

    @pytest.mark.parametrize("kind", SAMPLERS)
    def test_bulk_reproducible_with_seed(self, uniform_data, kind):
        a = build(kind, uniform_data, seed=74)
        b = build(kind, uniform_data, seed=74)
        assert (a.sample_bulk(0.2, 0.8, 500) == b.sample_bulk(0.2, 0.8, 500)).all()


class TestRunnerEquivalence:
    def test_counts_match_per_query_sample(self, uniform_data):
        structures = {kind: build(kind, uniform_data, seed=75) for kind in SAMPLERS}
        scalar = {kind: build(kind, uniform_data, seed=76) for kind in SAMPLERS}
        queries = [
            BatchQuery(0.1, 0.6, 37, "static"),
            BatchQuery(0.3, 0.9, 11, "dynamic"),
            BatchQuery(0.2, 0.4, 5, "weighted"),
            BatchQuery(0.5, 0.7, 0, "static"),
            BatchQuery(0.0, 1.0, 23, "dynamic"),
        ]
        result = BatchQueryRunner(structures).run(queries)
        assert len(result.samples) == len(queries)
        for q, samples in zip(queries, result.samples):
            assert len(samples) == len(scalar[q.structure].sample(q.lo, q.hi, q.t))
            assert all(q.lo <= v <= q.hi for v in samples)
        assert result.stats.queries == len(queries)
        assert result.stats.samples_returned == sum(q.t for q in queries)
        assert result.stats.extra == {
            "queries:static": 2,
            "queries:dynamic": 2,
            "queries:weighted": 1,
        }

    def test_tuple_queries_and_default_structure(self, uniform_data):
        runner = BatchQueryRunner(StaticIRS(uniform_data, seed=77))
        result = runner.run([(0.1, 0.9, 10), (0.2, 0.8, 20, "default")])
        assert [len(s) for s in result.samples] == [10, 20]

    def test_scalar_fallback_without_sample_bulk(self, uniform_data):
        from repro.baselines import ReportThenSample

        runner = BatchQueryRunner(ReportThenSample(uniform_data, seed=78))
        result = runner.run([(0.2, 0.6, 15)])
        assert len(result.samples[0]) == 15

    def test_unknown_structure_rejected(self, uniform_data):
        runner = BatchQueryRunner(StaticIRS(uniform_data, seed=79))
        with pytest.raises(KeyNotFoundError):
            runner.run([BatchQuery(0.1, 0.2, 1, "nope")])

    def test_unknown_structure_fails_before_any_execution(self, uniform_data):
        sampler = DynamicIRS(uniform_data, seed=79)
        runner = BatchQueryRunner({"dynamic": sampler})
        with pytest.raises(KeyNotFoundError):
            runner.run([BatchQuery(0.1, 0.9, 10, "dynamic"),
                        BatchQuery(0.1, 0.2, 1, "typo")])
        assert sampler.stats.queries == 0  # atomic: nothing ran

    def test_malformed_query_rejected(self, uniform_data):
        runner = BatchQueryRunner(StaticIRS(uniform_data, seed=80))
        with pytest.raises(InvalidQueryError):
            runner.run([(0.1, 0.2)])
        with pytest.raises(InvalidQueryError):
            runner.run([("0.1", "nope", 5)])

    def test_weighted_bulk_t_zero(self, uniform_data):
        sampler = WeightedStaticIRS(uniform_data, [1.0] * len(uniform_data), seed=80)
        assert len(sampler.sample_bulk(0.1, 0.9, 0)) == 0

    def test_empty_runner_rejected(self):
        with pytest.raises(ValueError):
            BatchQueryRunner({})

    def test_run_means(self, uniform_data):
        runner = BatchQueryRunner(StaticIRS(uniform_data, seed=81))
        means = runner.run_means([(0.4, 0.6, 2000), (0.1, 0.2, 0)])
        assert means[0] == pytest.approx(0.5, abs=0.05)
        assert np.isnan(means[1])


class TestRunMixed:
    def test_stream_matches_scalar_replay(self):
        data = [float(i) for i in range(500)]
        runner = BatchQueryRunner(DynamicIRS(data, seed=91))
        reference = DynamicIRS(data, seed=91)
        ops = (
            [("insert", 1000.0 + i) for i in range(40)]
            + [("sample", 0.0, 2000.0, 32)]
            + [("delete", float(i)) for i in range(25)]
            + [("insert", -5.0), ("delete", 1000.0), ("sample", -10.0, 2000.0, 16)]
        )
        result = runner.run_mixed(ops)
        for op in ops:
            if op[0] == "insert":
                reference.insert(op[1])
            elif op[0] == "delete":
                reference.delete(op[1])
        structure = runner.structures["default"]
        assert structure.values() == reference.values()
        structure.check_invariants()
        # samples align with op positions; updates yield None
        assert [s is not None for s in result.samples].count(True) == 2
        assert len(result.samples[40]) == 32
        assert len(result.samples[-1]) == 16
        assert result.stats.queries == 2
        assert result.stats.extra["updates"] == 67
        # three coalesced runs of same-kind updates
        assert result.stats.extra["bulk_update_calls"] == 4
        assert result.operations == 69

    def test_kind_switch_preserves_order(self):
        # insert v, delete v, insert v must net to one occurrence — a
        # naive "all inserts then all deletes" coalescing would differ
        # for the error case below.
        runner = BatchQueryRunner(DynamicIRS([1.0], seed=92))
        runner.run_mixed([("insert", 2.0), ("delete", 2.0), ("insert", 2.0)])
        assert runner.structures["default"].values() == [1.0, 2.0]
        # deleting a value that is only inserted later in the stream fails
        runner2 = BatchQueryRunner(DynamicIRS([1.0], seed=93))
        with pytest.raises(KeyNotFoundError):
            runner2.run_mixed([("delete", 5.0), ("insert", 5.0)])

    def test_batchop_constructors_and_weighted(self):
        w = WeightedDynamicIRS([1.0, 2.0], [1.0, 1.0], seed=94)
        runner = BatchQueryRunner({"w": w})
        result = runner.run_mixed(
            [
                BatchOp.insert(3.0, weight=2.5, structure="w"),
                BatchOp.insert(4.0, structure="w"),
                BatchOp.sample(0.0, 10.0, 8, structure="w"),
                BatchOp.delete(1.0, structure="w"),
            ]
        )
        assert sorted(w.items()) == [(2.0, 1.0), (3.0, 2.5), (4.0, 1.0)]
        assert len(result.samples[2]) == 8
        assert result.stats.extra["queries:w"] == 1

    def test_scalar_fallback_structures(self, uniform_data):
        from repro.baselines import TreeWalkSampler

        sampler = TreeWalkSampler(uniform_data, seed=95)
        runner = BatchQueryRunner(sampler)
        result = runner.run_mixed(
            [("insert", 2.5), ("insert", 3.5), ("sample", 0.0, 4.0, 5)]
        )
        assert len(result.samples[2]) == 5
        assert result.stats.extra["bulk_update_calls"] == 0

    def test_update_on_readonly_structure_rejected(self, uniform_data):
        runner = BatchQueryRunner(StaticIRS(uniform_data, seed=96))
        with pytest.raises(InvalidQueryError):
            runner.run_mixed([("insert", 1.0)])

    def test_weighted_insert_on_unweighted_structure_rejected(self, uniform_data):
        sampler = DynamicIRS(uniform_data, seed=96)
        runner = BatchQueryRunner(sampler)
        before = len(sampler)
        with pytest.raises(InvalidQueryError):
            # Validation fires upfront: the preceding plain insert must not
            # have been applied when the weighted op is rejected.
            runner.run_mixed([("insert", 1.0), BatchOp.insert(2.0, weight=3.0)])
        assert len(sampler) == before

    def test_unknown_structure_and_malformed_op(self, uniform_data):
        runner = BatchQueryRunner(StaticIRS(uniform_data, seed=97))
        with pytest.raises(KeyNotFoundError):
            runner.run_mixed([("insert", 1.0, "nope")])
        with pytest.raises(InvalidQueryError):
            runner.run_mixed([("frobnicate", 1.0)])
        with pytest.raises(InvalidQueryError):
            runner.run_mixed([("sample", 1.0)])


class TestDynamicInvalidation:
    def test_bulk_sees_inserts(self):
        sampler = DynamicIRS([float(i) for i in range(200)], seed=82)
        before = sampler.sample_bulk(50.0, 60.0, 500)
        assert not (before == 55.5).any()
        for _ in range(40):
            sampler.insert(55.5)
        after = sampler.sample_bulk(50.0, 60.0, 2000)
        # 40 of ~51 in-range points are the new value; it must show up.
        assert (after == 55.5).sum() > 0

    def test_bulk_sees_deletes(self):
        sampler = DynamicIRS([float(i) for i in range(200)], seed=83)
        sampler.sample_bulk(0.0, 199.0, 100)  # warm the chunk caches
        for v in range(100, 200):
            sampler.delete(float(v))
        remaining = sampler.sample_bulk(0.0, 199.0, 2000)
        assert (remaining < 100.0).all()
        sampler.check_invariants()

    def test_bulk_sees_rebuild(self):
        sampler = DynamicIRS([float(i) for i in range(64)], seed=84)
        sampler.sample_bulk(0.0, 63.0, 50)
        for i in range(64, 512):  # trigger n > 2·n0 rebuilds
            sampler.insert(float(i))
        samples = sampler.sample_bulk(0.0, 511.0, 4000)
        assert (samples >= 256.0).any()
        sampler.check_invariants()


class TestPeekCountsAndRunCounts:
    """The vectorized count-only path (`peek_counts` + `run_counts`)."""

    RANGES = [(10.0, 90.0), (49.5, 49.5), (49.0, 49.0), (-5.0, -1.0),
              (0.0, 199.0), (198.5, 300.0)]

    def test_static_peek_counts_matches_count(self):
        data = [float(i % 100) for i in range(200)]  # duplicates included
        sampler = StaticIRS(data, seed=91)
        got = sampler.peek_counts(self.RANGES)
        assert list(got) == [sampler.count(lo, hi) for lo, hi in self.RANGES]

    def test_dynamic_peek_counts_matches_count(self):
        data = [float(i % 100) for i in range(200)]
        sampler = DynamicIRS(data, seed=92)
        got = sampler.peek_counts(self.RANGES)
        assert list(got) == [sampler.count(lo, hi) for lo, hi in self.RANGES]

    def test_dynamic_peek_counts_after_updates(self):
        sampler = DynamicIRS([float(i) for i in range(300)], seed=93)
        sampler.count(0.0, 299.0)  # build the prefix cache
        for v in (300.5, 301.5, 302.5):
            sampler.insert(v)  # pending deltas ride on the cached prefix
        sampler.delete(10.0)
        got = sampler.peek_counts([(0.0, 400.0), (299.5, 400.0), (5.0, 15.0)])
        assert list(got) == [302, 3, 10]

    def test_peek_counts_rejects_bad_bounds(self):
        sampler = StaticIRS([1.0, 2.0], seed=94)
        with pytest.raises(InvalidQueryError):
            sampler.peek_counts([(2.0, 1.0)])
        dynamic = DynamicIRS([1.0, 2.0], seed=95)
        with pytest.raises(InvalidQueryError):
            dynamic.peek_counts([(float("nan"), 1.0)])

    def test_run_counts_grouped_and_aligned(self, uniform_data):
        runner = BatchQueryRunner(
            {
                "static": StaticIRS(uniform_data, seed=96),
                "dynamic": DynamicIRS(uniform_data, seed=97),
                "weighted": WeightedStaticIRS(
                    uniform_data, [1.0] * len(uniform_data), seed=98
                ),  # no peek_counts: exercises the fallback
            }
        )
        queries = [
            (0.1, 0.9, "static"),
            (0.1, 0.9, "dynamic"),
            (0.1, 0.9, "weighted"),
            BatchQuery(0.2, 0.4, 0, "static"),
            (0.3, 0.5, "dynamic"),
        ]
        counts = runner.run_counts(queries)
        assert counts[0] == counts[1] == counts[2]
        assert counts[3] == runner.structures["static"].count(0.2, 0.4)
        assert counts[4] == runner.structures["dynamic"].count(0.3, 0.5)

    def test_run_counts_errors(self, uniform_data):
        runner = BatchQueryRunner(StaticIRS(uniform_data, seed=99))
        with pytest.raises(KeyNotFoundError):
            runner.run_counts([(0.1, 0.9, "nope")])
        with pytest.raises(InvalidQueryError):
            runner.run_counts(["garbage"])
