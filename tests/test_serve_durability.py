"""The serving layer's durability loop, in process (no subprocesses here)."""

from __future__ import annotations

import asyncio
import json
import os

from repro import DynamicIRS, WeightedDynamicIRS
from repro.serve import ReproServer, ServeClient

DATA = [float(i) for i in range(50)]


def run(coro):
    return asyncio.run(coro)


def fresh_structures():
    return {
        "default": DynamicIRS(DATA, seed=1),
        "weighted": WeightedDynamicIRS(DATA, [1.0] * len(DATA), seed=2),
    }


def test_server_without_data_dir_has_no_store():
    async def main():
        async with ReproServer(fresh_structures(), seed=5) as server:
            assert server.store is None and server.recovery is None
            await ServeClient(server).insert(1.5)

    run(main())


def test_server_recovers_state_and_seeded_replies(tmp_path):
    data_dir = str(tmp_path / "srv")
    sample_req = json.dumps(
        {"id": 1, "op": "sample", "lo": 0.0, "hi": 100.0, "t": 12, "seed": 99}
    ).encode()

    async def first_run():
        async with ReproServer(fresh_structures(), seed=5, data_dir=data_dir) as server:
            client = ServeClient(server)
            await client.insert_bulk([100.5, 101.5, 102.5])
            await client.delete(0.0)
            await client.insert(7.25, structure="weighted")
            reply = await server.submit(sample_req)
            state = list(server._runner.structures["default"].export_sorted())
            return reply, state

    async def second_run():
        async with ReproServer(fresh_structures(), seed=5, data_dir=data_dir) as server:
            reply = await server.submit(sample_req)
            state = list(server._runner.structures["default"].export_sorted())
            wstate = list(server._runner.structures["weighted"].export_sorted())
            return reply, state, wstate, server.recovery

    reply1, state1 = run(first_run())
    reply2, state2, wstate2, recovery = run(second_run())
    assert state2 == state1
    assert 7.25 in wstate2
    # Client-seeded replies are byte-identical across the restart.
    assert json.dumps(reply2, sort_keys=True) == json.dumps(reply1, sort_keys=True)
    # Graceful shutdown checkpointed, so recovery came from the snapshot
    # alone with nothing left to replay.
    assert recovery.snapshot_seq > 0
    assert recovery.replayed_records == 0


def test_server_snapshot_ops_trigger(tmp_path):
    data_dir = str(tmp_path / "srv")

    async def main():
        async with ReproServer(
            DynamicIRS(DATA, seed=1), seed=5, data_dir=data_dir, snapshot_ops=2
        ) as server:
            client = ServeClient(server)
            for i in range(5):
                await client.insert(1000.0 + i)
            # The size trigger fired mid-run: fewer pending ops than inserts.
            assert server.store.ops_since_snapshot < 5
            return server.store.snapshots.latest()[0]

    assert run(main()) >= 1
    snaps = os.listdir(os.path.join(data_dir, "snapshots"))
    assert len(snaps) == 1


def test_server_interval_trigger(tmp_path):
    data_dir = str(tmp_path / "srv")

    async def main():
        async with ReproServer(
            DynamicIRS(DATA, seed=1),
            seed=5,
            data_dir=data_dir,
            snapshot_interval=0.0,  # every executed batch is past due
        ) as server:
            client = ServeClient(server)
            await client.insert(1000.0)
            assert server.store.ops_since_snapshot == 0
            assert server.store.snapshots.latest() is not None

    run(main())


def test_server_read_only_traffic_logs_nothing(tmp_path):
    data_dir = str(tmp_path / "srv")

    async def main():
        async with ReproServer(
            DynamicIRS(DATA, seed=1), seed=5, data_dir=data_dir
        ) as server:
            client = ServeClient(server)
            await client.count(0.0, 100.0)
            await client.sample(0.0, 100.0, 4)
            assert server.store.last_seq == 0

    run(main())
    # No updates -> shutdown writes no snapshot either.
    assert os.listdir(os.path.join(data_dir, "snapshots")) == []


def test_server_failed_update_replays_identically(tmp_path):
    data_dir = str(tmp_path / "srv")

    async def main(check):
        async with ReproServer(
            DynamicIRS(DATA, seed=1),
            seed=5,
            data_dir=data_dir,
            snapshot_ops=10_000_000,  # keep everything in the WAL
        ) as server:
            client = ServeClient(server)
            if not check:
                # One failing delete inside a batch of otherwise-good updates:
                # the reply is a typed error, the WAL still holds the batch.
                await client.insert(200.0)
                reply = await server.submit(
                    json.dumps({"id": 9, "op": "delete", "value": 555.5}).encode()
                )
                assert reply["ok"] is False
                await client.insert(201.0)
                # Skip the shutdown snapshot so recovery must replay the WAL.
                server._store_closed = True
                server.store.close()
            return (
                list(server._runner.structures["default"].export_sorted()),
                server.recovery,
            )

    state1, _ = run(main(check=False))
    state2, recovery = run(main(check=True))
    assert state2 == state1
    assert recovery.snapshot_seq == 0
    assert recovery.replayed_ops == 3
