"""Kernel tier (PR 10): dispatch seam, backend parity, dtype planes, zero-copy.

The compiled (numba) and vectorized (numpy) backends must be *byte-identical*
under a fixed seed — parity here is a hard equality, not a statistical gate.
Without numba installed the cross-backend tests skip and the suite still
exercises the numpy backend's semantics against independent oracles, the
dtype-generic storage planes, and the strict zero-copy adoption contract.
"""

from __future__ import annotations

import bisect
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import DynamicIRS, ShardedIRS, StaticIRS, WeightedDynamicIRS
from repro.core import backend_info, kernels
from repro.core.planes import as_plane, resolve_dtype
from repro.errors import KernelBackendError, ZeroCopyError

BACKENDS = kernels.available_backends()

needs_both = pytest.mark.skipif(
    len(BACKENDS) < 2, reason="numba backend unavailable"
)

_HERE = os.path.dirname(os.path.abspath(__file__))


@pytest.fixture(params=BACKENDS)
def backend(request):
    """Force one kernel backend for the duration of a test."""
    previous = kernels.set_backend(request.param)
    yield kernels.get()
    kernels.set_backend(previous)


# -- dispatch seam ---------------------------------------------------------------


class TestDispatch:
    def test_backend_info_shape(self):
        info = backend_info()
        assert info["backend"] in ("numpy", "numba")
        assert "numpy" in info["available"]
        assert info["backend"] in info["available"]
        assert info["numpy_version"] == np.__version__
        if info["numba_version"] is None:
            assert info["numba_error"]
        json.dumps(info)  # JSON-safe by contract

    def test_set_backend_roundtrip(self):
        previous = kernels.set_backend("numpy")
        try:
            assert kernels.backend_name() == "numpy"
        finally:
            kernels.set_backend(previous)
        assert kernels.backend_name() == previous

    def test_set_backend_unknown_raises(self):
        with pytest.raises(KernelBackendError):
            kernels.set_backend("cython")

    @pytest.mark.skipif("numba" in BACKENDS, reason="numba is installed")
    def test_set_backend_numba_unavailable_raises(self):
        with pytest.raises(KernelBackendError):
            kernels.set_backend("numba")

    def test_env_override_selects_numpy(self):
        out = self._subprocess_backend({"REPRO_KERNELS": "numpy"})
        assert out == "numpy"

    @needs_both
    def test_env_override_selects_numba(self):
        out = self._subprocess_backend({"REPRO_KERNELS": "numba"})
        assert out == "numba"

    def test_env_override_unknown_fails(self):
        proc = self._run_subprocess({"REPRO_KERNELS": "fortran"})
        assert proc.returncode != 0
        assert "KernelBackendError" in proc.stderr

    @staticmethod
    def _run_subprocess(extra_env):
        env = dict(os.environ, **extra_env)
        src = os.path.join(os.path.dirname(_HERE), "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        code = "from repro.core import kernels; print(kernels.backend_name())"
        return subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )

    @classmethod
    def _subprocess_backend(cls, extra_env) -> str:
        proc = cls._run_subprocess(extra_env)
        assert proc.returncode == 0, proc.stderr
        return proc.stdout.strip()


# -- kernel-op semantics against independent oracles -----------------------------


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestKernelOps:
    """Each op checked against a pure-Python/NumPy oracle, per backend."""

    def test_splices(self, backend):
        arr = np.sort(_rng(1).uniform(0, 100, 33))
        pos = int(np.searchsorted(arr, 42.0))
        inserted = backend.splice_insert(arr, pos, 42.0)
        assert inserted.tolist() == sorted(arr.tolist() + [42.0])
        removed = backend.splice_delete(inserted, pos)
        assert removed.tolist() == arr.tolist()
        assert inserted.dtype == removed.dtype == arr.dtype

    def test_scalar_searches(self, backend):
        arr = np.asarray([1.0, 2.0, 2.0, 2.0, 5.0])
        for v in (0.0, 1.0, 2.0, 3.0, 5.0, 9.0):
            assert backend.search_left_scalar(arr, v) == bisect.bisect_left(
                arr.tolist(), v
            )
            assert backend.search_right_scalar(arr, v) == bisect.bisect_right(
                arr.tolist(), v
            )

    def test_search_right_vector(self, backend):
        arr = np.sort(_rng(2).integers(0, 50, 40).astype(float))
        targets = _rng(3).integers(-5, 55, 25).astype(float)
        got = np.asarray(backend.search_right(arr, targets))
        assert got.tolist() == [
            bisect.bisect_right(arr.tolist(), t) for t in targets
        ]

    def test_merge_runs_is_stable_chunk_first(self, backend):
        # On ties the chunk's occurrences must precede the batch's: tag
        # equal keys by provenance through a parallel argsort oracle.
        chunk = np.asarray([1.0, 3.0, 3.0, 7.0])
        batch = np.asarray([0.0, 3.0, 3.0, 9.0])
        merged = backend.merge_runs(chunk, batch)
        assert merged.tolist() == sorted(chunk.tolist() + batch.tolist())
        # Positional oracle: chunk-first means searchsorted-right placement.
        ins = np.searchsorted(chunk, batch, side="right")
        expect = np.insert(chunk, ins, batch)
        assert merged.tolist() == expect.tolist()

    def test_merge_pair_runs_carries_weights(self, backend):
        cdata = np.asarray([1.0, 4.0, 4.0])
        cweights = np.asarray([10.0, 11.0, 12.0])
        bdata = np.asarray([0.0, 4.0, 8.0])
        bweights = np.asarray([20.0, 21.0, 22.0])
        mdata, mweights = backend.merge_pair_runs(cdata, cweights, bdata, bweights)
        assert mdata.tolist() == [0.0, 1.0, 4.0, 4.0, 4.0, 8.0]
        # chunk-first on the tie at 4.0: chunk weights 11, 12 precede 21.
        assert mweights.tolist() == [20.0, 10.0, 11.0, 12.0, 21.0, 22.0]

    def test_take_out(self, backend):
        arr = np.asarray([0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        hits = np.asarray([1, 4], dtype=np.int64)
        assert backend.take_out(arr, hits).tolist() == [0.0, 2.0, 3.0, 5.0]

    def test_cum_table(self, backend):
        weights = np.asarray([0.5, 1.5, 2.0, 0.25])
        got = np.asarray(backend.cum_table(weights))
        assert got.tolist() == np.cumsum(weights).tolist()

    def test_rejection_split(self, backend):
        # Oracle: walk the codes sequentially, keeping draws whose slot
        # falls under the chunk's true count, until `needed` are kept.
        counts = np.asarray([3, 5, 2, 4], dtype=np.int64)
        cap = 5
        window_lo = 0
        codes = np.asarray(
            _rng(4).integers(0, len(counts) * cap, 64), dtype=np.int64
        )
        needed = 6
        cells, slots, consumed = backend.rejection_split(
            codes, counts, window_lo, cap, needed
        )
        kept = []
        used = 0
        for code in codes.tolist():
            used += 1
            cell, slot = divmod(code, cap)
            if slot < counts[window_lo + cell]:
                kept.append((cell, slot))
                if len(kept) == needed:
                    break
        assert consumed == used
        assert list(zip(np.asarray(cells).tolist(), np.asarray(slots).tolist())) == kept

    def test_flat_pick(self, backend):
        vals = np.sort(_rng(5).uniform(0, 10, 20))
        gcum = np.concatenate(([0.0], np.cumsum(_rng(6).uniform(0.1, 1.0, 20))))
        targets = _rng(7).uniform(0, gcum[-1], 16)
        lo, hi = 3, 17
        got = np.asarray(backend.flat_pick(vals, gcum, targets, lo, hi))
        expect = [
            float(vals[min(max(int(np.searchsorted(gcum, t, side="right")), lo), hi)])
            for t in targets
        ]
        assert got.dtype == np.float64
        assert got.tolist() == expect


# -- cross-backend parity: ops, stateful machines, seed audit --------------------


def _op_fingerprints(backend):
    """Deterministic results of every kernel op on shared inputs."""
    arr = np.sort(_rng(11).uniform(0, 100, 64))
    batch = np.sort(_rng(12).uniform(0, 100, 16))
    weights = _rng(13).uniform(0.1, 2.0, arr.size)
    hits = np.asarray(sorted(_rng(14).choice(arr.size, 8, replace=False)), dtype=np.int64)
    counts = np.asarray(_rng(15).integers(1, 9, 12), dtype=np.int64)
    codes = np.asarray(_rng(16).integers(0, 12 * 9, 80), dtype=np.int64)
    gcum = np.concatenate(([0.0], np.cumsum(weights)))
    targets = _rng(17).uniform(0, gcum[-1], 24)
    mp = backend.merge_pair_runs(arr[:16], weights[:16], batch, weights[16:32])
    rj = backend.rejection_split(codes, counts, 0, 9, 10)
    return [
        backend.splice_insert(arr, 10, 50.5).tolist(),
        backend.splice_delete(arr, 3).tolist(),
        backend.search_left_scalar(arr, float(arr[20])),
        backend.search_right_scalar(arr, float(arr[20])),
        np.asarray(backend.search_right(arr, batch)).tolist(),
        backend.merge_runs(arr, batch).tolist(),
        [mp[0].tolist(), mp[1].tolist()],
        backend.take_out(arr, hits).tolist(),
        np.asarray(backend.cum_table(weights)).tolist(),
        [np.asarray(x).tolist() for x in rj[:2]] + [rj[2]],
        np.asarray(backend.flat_pick(arr, gcum, targets, 2, arr.size - 3)).tolist(),
    ]


@needs_both
def test_every_op_identical_across_backends():
    results = {}
    for name in BACKENDS:
        previous = kernels.set_backend(name)
        try:
            results[name] = _op_fingerprints(kernels.get())
        finally:
            kernels.set_backend(previous)
    first, second = (results[name] for name in BACKENDS[:2])
    assert first == second


def _drive_dynamic(dtype):
    data = [float((i * 37) % 101) for i in range(220)]
    s = DynamicIRS(data, seed=42, dtype=dtype)
    s.insert_bulk([0.5 * i + 0.125 for i in range(48)])
    s.delete_bulk([float((i * 37) % 101) for i in range(0, 60, 3)])
    for i in range(25):
        s.insert(float((i * 13) % 47) + 0.25)
        if i % 5 == 0:
            s.delete(float((i * 13) % 47) + 0.25)
    s.check_invariants()
    return [
        s.sample(5.0, 90.0, 32),
        list(s.sample_bulk(2.0, 80.0, 64, seed=9)),
        s.sample_without_replacement(10.0, 60.0, 12),
        s.export_sorted().tolist(),
    ]


def _drive_weighted(dtype):
    data = [float((i * 53) % 97) for i in range(180)]
    weights = [1.0 + (i % 7) for i in range(180)]
    s = WeightedDynamicIRS(data, weights, seed=7, dtype=dtype)
    s.insert_bulk([0.25 * i for i in range(40)], [1.5] * 40)
    s.delete_bulk([float((i * 53) % 97) for i in range(0, 40, 4)])
    for i in range(20):
        s.insert(float(i) + 0.5, 2.0 + i % 3)
        if i % 4 == 0:
            s.update_weight(float(i) + 0.5, 5.0)
    s.check_invariants()
    return [
        s.sample(5.0, 90.0, 32),
        list(s.sample_bulk(2.0, 80.0, 64, seed=11)),
        [list(p) for p in zip(*s.export_sorted_pairs())],
    ]


@needs_both
def test_stateful_machines_identical_across_backends():
    """The full update/sample workload draws byte-identically per backend."""
    results = {}
    for name in BACKENDS:
        previous = kernels.set_backend(name)
        try:
            results[name] = [
                _drive_dynamic(np.float64),
                _drive_dynamic(np.float32),
                _drive_weighted(np.float64),
                _drive_weighted(np.float32),
            ]
        finally:
            kernels.set_backend(previous)
    first, second = (results[name] for name in BACKENDS[:2])
    assert first == second


@needs_both
def test_seedaudit_identical_across_backends():
    """The full sampler×path audit fingerprints agree across backends."""
    script = os.path.join(_HERE, "seedaudit.py")
    src = os.path.join(os.path.dirname(_HERE), "src")

    def run(backend_name):
        env = dict(os.environ, REPRO_KERNELS=backend_name)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
            timeout=300,
        )
        return json.loads(proc.stdout)

    audits = [run(name) for name in BACKENDS[:2]]
    assert audits[0] == audits[1]


# -- dtype-generic storage planes ------------------------------------------------


class TestDtypePlanes:
    def test_resolve_dtype_rules(self):
        assert resolve_dtype([1.0], None) == np.float64
        assert resolve_dtype(np.zeros(3, dtype=np.float32), None) == np.float32
        assert resolve_dtype(np.zeros(3, dtype=np.int64), None) == np.float64
        assert resolve_dtype([1.0], np.float32) == np.float32
        with pytest.raises(ValueError):
            resolve_dtype([1.0], np.int32)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_static_and_dynamic_planes(self, dtype):
        data = _rng(21).uniform(0, 1, 300)
        s = StaticIRS(data, seed=1, dtype=dtype)
        d = DynamicIRS(data, seed=1, dtype=dtype)
        for structure in (s, d):
            assert structure.dtype == np.dtype(dtype)
            assert structure.export_sorted().dtype == np.dtype(dtype)
            assert structure.plane_nbytes == 300 * np.dtype(dtype).itemsize
            out = structure.sample_bulk(0.2, 0.8, 50)
            assert out.dtype == np.float64

    def test_weighted_values_plane_narrows_weights_stay_f64(self):
        data = _rng(22).uniform(0, 1, 200)
        w = WeightedDynamicIRS(data, np.ones(200), seed=3, dtype=np.float32)
        values, weights = w.export_sorted_pairs()
        assert values.dtype == np.float32
        assert weights.dtype == np.float64
        assert w.plane_nbytes == 200 * (4 + 8)

    def test_f32_counts_match_f32_membership(self):
        # Query bounds are rounded through the plane dtype, so counts are
        # exactly the float32 closed-interval membership.
        data = np.asarray([0.1, 0.2, 0.3], dtype=np.float32)
        s = StaticIRS(data, seed=1)
        lo = float(np.float32(0.2))  # representable bound
        assert s.count(lo, 1.0) == 2
        assert s.count(0.2, 1.0) == 2  # 0.2 rounds to the same bound
        d = DynamicIRS(data, seed=1)
        assert d.count(0.2, 1.0) == s.count(0.2, 1.0)

    def test_sharded_dtype_and_f64_only_kinds(self):
        data = np.sort(_rng(23).uniform(0, 1, 400))
        s = ShardedIRS.from_sorted(data, num_shards=4, seed=5, dtype=np.float32)
        assert s.dtype == np.float32
        assert s.export_sorted().dtype == np.float32
        assert all(shard.dtype == np.float32 for shard in s.shards)
        s.insert_bulk(_rng(24).uniform(0, 1, 50))
        s.check_invariants()
        with pytest.raises(ValueError):
            ShardedIRS([1.0], shard_kind="external", dtype=np.float32)
        with pytest.raises(ValueError):
            ShardedIRS(
                [1.0], shard_kind="weighted", weights=[1.0], dtype=np.float32
            )

    def test_snapshot_roundtrip_preserves_dtype(self, tmp_path):
        from repro.store.snapshot import (
            SnapshotStore,
            build_from_sorted,
            snapshot_spec,
        )

        store = SnapshotStore(str(tmp_path))
        original = {
            "f32": StaticIRS(_rng(25).uniform(0, 1, 64), seed=1, dtype=np.float32),
            "f64": DynamicIRS(_rng(26).uniform(0, 1, 64), seed=2),
        }
        store.save(original, wal_seq=1)
        loaded = store.load()
        rebuilt = {
            name: build_from_sorted(spec, values, weights, seed=9)
            for name, (spec, values, weights) in loaded.items()
        }
        assert rebuilt["f32"].dtype == np.float32
        assert rebuilt["f64"].dtype == np.float64
        for name in original:
            assert rebuilt[name].export_sorted().tolist() == pytest.approx(
                original[name].export_sorted().tolist()
            )
        # float32 planes persist at 4 bytes/point (file name carries f4).
        snap_dir = next(p for p in tmp_path.iterdir() if p.name.startswith("snap-"))
        suffixes = {p.suffix for p in snap_dir.iterdir()}
        assert ".f4" in suffixes and ".f8" in suffixes


# -- zero-copy adoption contract -------------------------------------------------


class TestZeroCopy:
    def test_static_adopts_the_caller_array(self):
        arr = np.sort(_rng(31).uniform(0, 1, 128))
        s = StaticIRS.from_sorted(arr, seed=1, copy=False)
        assert s.export_sorted() is arr

    def test_dynamic_chunks_are_views_of_the_caller_array(self):
        arr = np.sort(_rng(32).uniform(0, 1, 512))
        d = DynamicIRS.from_sorted(arr, seed=1, copy=False)
        # Every chunk except a possibly-merged tail pair is a view of the
        # adopted plane (the tail merge below the size floor concatenates).
        shared = [np.shares_memory(chunk.data, arr) for chunk in d._dir.chunks]
        assert all(shared[:-2]) and any(shared)
        # Read-only buffers adopt too (the snapshot-recovery path).
        ro = np.frombuffer(arr.tobytes())
        assert not ro.flags.writeable
        d2 = DynamicIRS.from_sorted(ro, seed=1, copy=False)
        assert np.shares_memory(d2._dir.chunks[0].data, ro)

    def test_copy_true_never_aliases(self):
        arr = np.sort(_rng(33).uniform(0, 1, 64))
        d = DynamicIRS.from_sorted(arr, seed=1)
        assert not any(np.shares_memory(chunk.data, arr) for chunk in d._dir.chunks)

    def test_adoption_contract_is_strict(self):
        arr = np.sort(_rng(34).uniform(0, 1, 64))
        with pytest.raises(ZeroCopyError):
            StaticIRS.from_sorted(arr.tolist(), copy=False)
        with pytest.raises(ZeroCopyError):
            StaticIRS.from_sorted(arr.astype(np.float32), dtype=np.float64, copy=False)
        with pytest.raises(ZeroCopyError):
            StaticIRS.from_sorted(arr[::2], copy=False)  # strided view
        with pytest.raises(ZeroCopyError):
            StaticIRS.from_sorted(arr.reshape(8, 8), copy=False)
        with pytest.raises(ValueError):
            StaticIRS.from_sorted(arr[::-1].copy(), copy=False)  # unsorted
        assert isinstance(ZeroCopyError("x"), ValueError)

    def test_as_plane_copy_false_returns_input(self):
        arr = np.sort(_rng(35).uniform(0, 1, 16))
        assert as_plane(arr, copy=False) is arr

    def test_admission_gate_sees_adopted_planes(self):
        from repro.obs.capacity import structure_bytes

        arr = np.sort(_rng(36).uniform(0, 1, 256)).astype(np.float32)
        s = StaticIRS.from_sorted(arr, seed=1, copy=False)
        assert structure_bytes(s) == arr.nbytes == 256 * 4


# -- observability surfaces ------------------------------------------------------


class TestObservability:
    def test_cli_info(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernels"]["backend"] == kernels.backend_name()
        assert "numpy" in payload["kernels"]["available"]
        assert payload["version"]

    def test_backend_gauge_marks_the_active_backend(self):
        from repro.serve.stats import ServerStats

        text = ServerStats().registry.render()
        active = kernels.backend_name()
        assert f'repro_core_kernel_backend{{backend="{active}"}} 1' in text
        for name in ("numpy", "numba"):
            if name != active:
                assert f'repro_core_kernel_backend{{backend="{name}"}} 0' in text
