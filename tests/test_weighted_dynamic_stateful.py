"""Hypothesis stateful test for WeightedDynamicIRS vs a list model.

Exercises the shared array-directory engine (DESIGN.md §8) under every
mutation kind — scalar insert/delete, ``update_weight``, bulk insert and
atomic bulk delete — and checks the read side (count, range_weight, the
vectorized peek probes, scalar and bulk sampling) against the model after
arbitrary interleavings.
"""

from __future__ import annotations

import bisect

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

import pytest

from repro import KeyNotFoundError, WeightedDynamicIRS

_VALUES = st.integers(0, 60).map(float)
_WEIGHTS = st.floats(min_value=0.1, max_value=50.0)


class WeightedDynamicMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**16))
    def setup(self, seed):
        self.structure = WeightedDynamicIRS(seed=seed)
        self.model: list[tuple[float, float]] = []  # sorted (value, weight)

    @rule(value=_VALUES, weight=_WEIGHTS)
    def insert(self, value, weight):
        self.structure.insert(value, weight)
        bisect.insort(self.model, (value, weight))

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        value = data.draw(st.sampled_from([v for v, _w in self.model]))
        removed = self.structure.delete(value)
        # The structure removes *one* occurrence of the value; the model must
        # drop an occurrence with exactly that weight.
        for i, (v, w) in enumerate(self.model):
            if v == value and w == pytest.approx(removed):
                self.model.pop(i)
                break
        else:
            raise AssertionError("structure returned a weight not in model")

    @rule(batch=st.lists(st.tuples(_VALUES, _WEIGHTS), max_size=25))
    def insert_bulk(self, batch):
        self.structure.insert_bulk([v for v, _w in batch], [w for _v, w in batch])
        for value, weight in batch:
            bisect.insort(self.model, (value, weight))

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_bulk_existing(self, data):
        batch = data.draw(
            st.lists(
                st.sampled_from([v for v, _w in self.model]), min_size=1, max_size=12
            )
        )
        from collections import Counter

        available = Counter(v for v, _w in self.model)
        take = []
        for value in batch:
            if available[value] > 0:
                available[value] -= 1
                take.append(value)
        removed = self.structure.delete_bulk(take)
        assert len(removed) == len(take)
        for value, weight in zip(take, removed):
            for i, (v, w) in enumerate(self.model):
                if v == value and w == pytest.approx(weight):
                    self.model.pop(i)
                    break
            else:
                raise AssertionError("bulk delete returned a weight not in model")

    @precondition(lambda self: self.model)
    @rule(data=st.data(), weight=_WEIGHTS)
    def update_weight(self, data, weight):
        value = data.draw(st.sampled_from([v for v, _w in self.model]))
        old = self.structure.update_weight(value, weight)
        for i, (v, w) in enumerate(self.model):
            if v == value and w == pytest.approx(old):
                self.model[i] = (v, weight)
                break
        else:
            raise AssertionError("update_weight returned a weight not in model")

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_bulk_missing_is_atomic(self, data):
        batch = data.draw(
            st.lists(st.sampled_from([v for v, _w in self.model]), max_size=5)
        )
        before = self.structure.items()
        with pytest.raises(KeyNotFoundError):
            # 1000.0 is outside the value strategy's [0, 60] range, so it
            # can never be present: the whole batch must roll back.
            self.structure.delete_bulk(batch + [1000.0])
        assert self.structure.items() == before

    @rule(lo=_VALUES, width=st.integers(0, 60))
    def count_and_weight_match(self, lo, width):
        hi = lo + width
        expected = [(v, w) for v, w in self.model if lo <= v <= hi]
        assert self.structure.count(lo, hi) == len(expected)
        assert self.structure.range_weight(lo, hi) == pytest.approx(
            sum(w for _v, w in expected), abs=1e-9
        )
        # The vectorized probes must agree with the scalar answers exactly
        # (counts) / to float tolerance (masses), pending deltas included.
        assert int(self.structure.peek_counts([(lo, hi)])[0]) == len(expected)
        assert float(self.structure.peek_weights([(lo, hi)])[0]) == pytest.approx(
            sum(w for _v, w in expected), abs=1e-9
        )

    @rule(lo=_VALUES, width=st.integers(0, 60), t=st.integers(1, 6))
    def samples_are_members(self, lo, width, t):
        hi = lo + width
        members = {v for v, _w in self.model if lo <= v <= hi}
        if not members:
            return
        for sample in self.structure.sample(lo, hi, t):
            assert sample in members

    @rule(lo=_VALUES, width=st.integers(0, 60), t=st.integers(1, 6))
    def bulk_samples_are_members(self, lo, width, t):
        hi = lo + width
        members = {v for v, _w in self.model if lo <= v <= hi}
        if not members:
            return
        for sample in self.structure.sample_bulk(lo, hi, t):
            assert sample in members

    @invariant()
    def sizes_agree(self):
        if hasattr(self, "model"):
            assert len(self.structure) == len(self.model)

    def teardown(self):
        if hasattr(self, "structure"):
            self.structure.check_invariants()
            got = self.structure.items()
            assert [v for v, _ in got] == [v for v, _ in self.model]


TestWeightedDynamicStateful = WeightedDynamicMachine.TestCase
TestWeightedDynamicStateful.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)
