"""Hypothesis stateful test for WeightedDynamicIRS vs a list model.

Exercises the shared array-directory engine (DESIGN.md §8) under every
mutation kind — scalar insert/delete, ``update_weight``, bulk insert and
atomic bulk delete — and checks the read side (count, range_weight, the
vectorized peek probes, scalar and bulk sampling) against the model after
arbitrary interleavings.
"""

from __future__ import annotations

import bisect

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

import pytest

from repro import KeyNotFoundError, WeightedDynamicIRS

_VALUES = st.integers(0, 60).map(float)
_WEIGHTS = st.floats(min_value=0.1, max_value=50.0)


class WeightedDynamicMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**16))
    def setup(self, seed):
        self.structure = WeightedDynamicIRS(seed=seed)
        self.model: list[tuple[float, float]] = []  # sorted (value, weight)

    @rule(value=_VALUES, weight=_WEIGHTS)
    def insert(self, value, weight):
        self.structure.insert(value, weight)
        bisect.insort(self.model, (value, weight))

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        value = data.draw(st.sampled_from([v for v, _w in self.model]))
        removed = self.structure.delete(value)
        # The structure removes *one* occurrence of the value; the model must
        # drop an occurrence with exactly that weight.
        for i, (v, w) in enumerate(self.model):
            if v == value and w == pytest.approx(removed):
                self.model.pop(i)
                break
        else:
            raise AssertionError("structure returned a weight not in model")

    @rule(batch=st.lists(st.tuples(_VALUES, _WEIGHTS), max_size=25))
    def insert_bulk(self, batch):
        self.structure.insert_bulk([v for v, _w in batch], [w for _v, w in batch])
        for value, weight in batch:
            bisect.insort(self.model, (value, weight))

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_bulk_existing(self, data):
        batch = data.draw(
            st.lists(
                st.sampled_from([v for v, _w in self.model]), min_size=1, max_size=12
            )
        )
        from collections import Counter

        available = Counter(v for v, _w in self.model)
        take = []
        for value in batch:
            if available[value] > 0:
                available[value] -= 1
                take.append(value)
        removed = self.structure.delete_bulk(take)
        assert len(removed) == len(take)
        for value, weight in zip(take, removed):
            for i, (v, w) in enumerate(self.model):
                if v == value and w == pytest.approx(weight):
                    self.model.pop(i)
                    break
            else:
                raise AssertionError("bulk delete returned a weight not in model")

    @precondition(lambda self: self.model)
    @rule(data=st.data(), weight=_WEIGHTS)
    def update_weight(self, data, weight):
        value = data.draw(st.sampled_from([v for v, _w in self.model]))
        old = self.structure.update_weight(value, weight)
        for i, (v, w) in enumerate(self.model):
            if v == value and w == pytest.approx(old):
                self.model[i] = (v, weight)
                break
        else:
            raise AssertionError("update_weight returned a weight not in model")

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_bulk_missing_is_atomic(self, data):
        batch = data.draw(
            st.lists(st.sampled_from([v for v, _w in self.model]), max_size=5)
        )
        before = self.structure.items()
        with pytest.raises(KeyNotFoundError):
            # 1000.0 is outside the value strategy's [0, 60] range, so it
            # can never be present: the whole batch must roll back.
            self.structure.delete_bulk(batch + [1000.0])
        assert self.structure.items() == before

    @rule(lo=_VALUES, width=st.integers(0, 60))
    def count_and_weight_match(self, lo, width):
        hi = lo + width
        expected = [(v, w) for v, w in self.model if lo <= v <= hi]
        assert self.structure.count(lo, hi) == len(expected)
        assert self.structure.range_weight(lo, hi) == pytest.approx(
            sum(w for _v, w in expected), abs=1e-9
        )
        # The vectorized probes must agree with the scalar answers exactly
        # (counts) / to float tolerance (masses), pending deltas included.
        assert int(self.structure.peek_counts([(lo, hi)])[0]) == len(expected)
        assert float(self.structure.peek_weights([(lo, hi)])[0]) == pytest.approx(
            sum(w for _v, w in expected), abs=1e-9
        )

    @rule(lo=_VALUES, width=st.integers(0, 60), t=st.integers(1, 6))
    def samples_are_members(self, lo, width, t):
        hi = lo + width
        members = {v for v, _w in self.model if lo <= v <= hi}
        if not members:
            return
        for sample in self.structure.sample(lo, hi, t):
            assert sample in members

    @rule(lo=_VALUES, width=st.integers(0, 60), t=st.integers(1, 6))
    def bulk_samples_are_members(self, lo, width, t):
        hi = lo + width
        members = {v for v, _w in self.model if lo <= v <= hi}
        if not members:
            return
        for sample in self.structure.sample_bulk(lo, hi, t):
            assert sample in members

    @invariant()
    def sizes_agree(self):
        if hasattr(self, "model"):
            assert len(self.structure) == len(self.model)

    def teardown(self):
        if hasattr(self, "structure"):
            self.structure.check_invariants()
            got = self.structure.items()
            assert [v for v, _ in got] == [v for v, _ in self.model]


TestWeightedDynamicStateful = WeightedDynamicMachine.TestCase
TestWeightedDynamicStateful.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)


class DecayedWindowMachine(RuleBasedStateMachine):
    """Window-expiry rules for the *decayed* :class:`WindowedIRS`.

    Decay mode rides the weighted plane, so this machine lives with the
    weighted stateful suite: the model is the last ``W`` arrivals, and the
    extra hazard over the uniform machine is the duplicate-expiry rebuild
    path (a by-value delete could strip the wrong occurrence's weight).
    Values are drawn from a tiny domain to force duplicates constantly.
    """

    @initialize(
        seed=st.integers(0, 2**16),
        window=st.integers(1, 20),
        expiry_batch=st.integers(1, 6),
    )
    def setup(self, seed, window, expiry_batch):
        from repro import WindowedIRS

        self.window = window
        self.structure = WindowedIRS(
            window=window, seed=seed, decay=0.9, expiry_batch=expiry_batch
        )
        self.model: list[float] = []  # the live window, oldest first

    def _arrive(self, batch):
        self.model.extend(batch)
        del self.model[: max(0, len(self.model) - self.window)]

    @rule(value=st.integers(0, 8).map(float))
    def insert(self, value):
        self.structure.insert(value)
        self._arrive([value])

    @rule(batch=st.lists(st.integers(0, 8).map(float), max_size=30))
    def advance(self, batch):
        self.structure.advance(batch)
        self._arrive(batch)

    @rule(lo=st.integers(0, 8).map(float), width=st.integers(0, 8))
    def count_sees_exactly_the_window(self, lo, width):
        hi = lo + width
        expected = sum(1 for v in self.model if lo <= v <= hi)
        assert self.structure.count(lo, hi) == expected

    @rule(lo=st.integers(0, 8).map(float), width=st.integers(0, 8))
    def report_sees_exactly_the_window(self, lo, width):
        hi = lo + width
        expected = sorted(v for v in self.model if lo <= v <= hi)
        assert self.structure.report(lo, hi) == expected

    @rule(
        lo=st.integers(0, 8).map(float),
        width=st.integers(0, 8),
        t=st.integers(1, 6),
    )
    def samples_never_surface_expired_keys(self, lo, width, t):
        hi = lo + width
        live = set(v for v in self.model if lo <= v <= hi)
        if not live:
            return
        for sample in self.structure.sample(lo, hi, t):
            assert sample in live
        for sample in self.structure.sample_bulk(lo, hi, t):
            assert sample in live

    @invariant()
    def window_never_overflows(self):
        if hasattr(self, "model"):
            assert len(self.structure) == len(self.model) <= self.window

    def teardown(self):
        if hasattr(self, "structure"):
            self.structure.check_invariants()
            assert self.structure.live() == self.model


TestDecayedWindowStateful = DecayedWindowMachine.TestCase
TestDecayedWindowStateful.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)
