"""Tests for DynamicIRS (result R2): correctness under churn."""

from __future__ import annotations

import random

import pytest

from repro import DynamicIRS, EmptyRangeError, InvalidQueryError, KeyNotFoundError
from repro.stats import uniformity_test
from repro.workloads import UpdateStream


class TestConstruction:
    def test_empty(self):
        d = DynamicIRS(seed=1)
        assert len(d) == 0
        assert d.count(0.0, 1.0) == 0
        with pytest.raises(EmptyRangeError):
            d.sample(0.0, 1.0, 1)
        d.check_invariants()

    def test_bulk_build(self, uniform_data):
        d = DynamicIRS(uniform_data, seed=2)
        assert len(d) == len(uniform_data)
        d.check_invariants()

    def test_build_from_unsorted_input(self):
        d = DynamicIRS([5.0, 1.0, 3.0, 2.0, 4.0], seed=3)
        assert d.values() == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_chunk_bounds_hold_after_build(self, uniform_data):
        d = DynamicIRS(uniform_data, seed=4)
        s, cap = d.chunk_size_bounds
        for chunk in d._iter_chunks():
            assert s <= len(chunk.data) <= cap


class TestUpdates:
    def test_insert_then_query(self):
        d = DynamicIRS(seed=5)
        for v in [3.0, 1.0, 2.0]:
            d.insert(v)
        assert d.count(1.0, 3.0) == 3
        assert sorted(d.sample(1.0, 3.0, 10)) != []
        d.check_invariants()

    def test_delete_missing_raises(self):
        d = DynamicIRS([1.0, 2.0], seed=6)
        with pytest.raises(KeyNotFoundError):
            d.delete(1.5)
        with pytest.raises(KeyNotFoundError):
            DynamicIRS(seed=7).delete(1.0)

    def test_delete_one_duplicate_occurrence(self):
        d = DynamicIRS([2.0, 2.0, 2.0], seed=8)
        d.delete(2.0)
        assert len(d) == 2
        assert d.count(2.0, 2.0) == 2

    def test_delete_to_empty_and_reuse(self):
        d = DynamicIRS([1.0, 2.0], seed=9)
        d.delete(1.0)
        d.delete(2.0)
        assert len(d) == 0
        d.insert(5.0)
        assert d.sample(5.0, 5.0, 2) == [5.0, 5.0]
        d.check_invariants()

    def test_grow_through_rebuild_thresholds(self):
        d = DynamicIRS(seed=10)
        for i in range(4000):
            d.insert(float(i % 97) + i * 1e-6)
        assert len(d) == 4000
        d.check_invariants()

    def test_shrink_through_rebuild_thresholds(self):
        values = [float(i) for i in range(4000)]
        d = DynamicIRS(values, seed=11)
        for v in values[:3500]:
            d.delete(v)
        assert len(d) == 500
        d.check_invariants()
        assert d.values() == values[3500:]

    def test_hotspot_inserts(self):
        """All inserts into one tiny band — worst case for chunk splits."""
        d = DynamicIRS([float(i) for i in range(1000)], seed=12)
        for i in range(2000):
            d.insert(500.0 + i * 1e-9)
        d.check_invariants()
        assert d.count(500.0, 501.0) == 2002

    def test_contains(self):
        d = DynamicIRS([1.0, 3.0], seed=13)
        assert 1.0 in d and 3.0 in d and 2.0 not in d


class TestQueriesMatchReference:
    def _compare(self, d: DynamicIRS, reference: list[float], queries) -> None:
        reference = sorted(reference)
        for lo, hi in queries:
            expected = [v for v in reference if lo <= v <= hi]
            assert d.count(lo, hi) == len(expected)
            assert d.report(lo, hi) == expected
            if expected:
                assert set(d.sample(lo, hi, 32)) <= set(expected)
            else:
                with pytest.raises(EmptyRangeError):
                    d.sample(lo, hi, 1)

    def test_against_sorted_list_reference(self):
        rng = random.Random(21)
        reference = [rng.uniform(0, 100) for _ in range(3000)]
        d = DynamicIRS(reference, seed=22)
        queries = [(rng.uniform(0, 90), 0.0) for _ in range(40)]
        queries = [(lo, lo + rng.uniform(0, 30)) for lo, _ in queries]
        self._compare(d, reference, queries)

    def test_after_heavy_churn(self):
        rng = random.Random(31)
        reference: list[float] = []
        d = DynamicIRS(seed=32)
        stream = UpdateStream([], insert_fraction=0.6, seed=33)
        for op, value in stream.take(6000):
            if op == "insert":
                d.insert(value)
                reference.append(value)
            else:
                d.delete(value)
                reference.remove(value)
        d.check_invariants()
        queries = [(0.1, 0.3), (0.0, 1.0), (0.45, 0.55), (0.9, 0.95)]
        self._compare(d, reference, queries)

    def test_narrow_middle_uses_alias_path(self):
        """A range spanning few whole chunks exercises the alias branch."""
        d = DynamicIRS([float(i) for i in range(600)], seed=41)
        s, cap = d.chunk_size_bounds
        lo, hi = 0.5, 0.5 + 4 * cap  # a handful of chunks
        expected = [v for v in d.values() if lo <= v <= hi]
        samples = d.sample(lo, hi, 200)
        assert set(samples) <= set(expected)

    def test_wide_middle_uses_pma_path(self):
        d = DynamicIRS([float(i) for i in range(30000)], seed=42)
        samples = d.sample(10.5, 29000.5, 400)
        assert all(10.5 <= v <= 29000.5 for v in samples)
        assert d.stats.samples_returned >= 400

    def test_invalid_queries(self):
        d = DynamicIRS([1.0], seed=43)
        with pytest.raises(InvalidQueryError):
            d.sample(2.0, 1.0, 1)
        with pytest.raises(InvalidQueryError):
            d.sample(1.0, 2.0, -3)


class TestDistribution:
    def test_uniform_over_static_snapshot(self):
        values = [float(i) for i in range(200)]
        d = DynamicIRS(values, seed=51)
        samples = d.sample(24.5, 174.5, 30_000)
        population = [v for v in values if 24.5 <= v <= 174.5]
        _stat, p = uniformity_test(samples, population)
        assert p > 1e-4

    def test_uniform_after_updates(self):
        d = DynamicIRS([float(i) for i in range(300)], seed=52)
        for i in range(0, 300, 3):
            d.delete(float(i))
        for i in range(300, 400):
            d.insert(float(i))
        population = d.report(50.0, 350.0)
        samples = d.sample(50.0, 350.0, 30_000)
        _stat, p = uniformity_test(samples, population)
        assert p > 1e-4

    def test_uniform_with_duplicates(self, duplicated_data):
        d = DynamicIRS(duplicated_data, seed=53)
        samples = d.sample(0.0, 1.0, 20_000)
        _stat, p = uniformity_test(samples, duplicated_data)
        assert p > 1e-4

    def test_boundary_chunk_only_query(self):
        """Range inside a single chunk: the partial-run fast path."""
        d = DynamicIRS([float(i) for i in range(1000)], seed=54)
        samples = d.sample(3.0, 6.0, 9000)
        _stat, p = uniformity_test(samples, [3.0, 4.0, 5.0, 6.0])
        assert p > 1e-4

    def test_expected_constant_rejections(self):
        """Rejection count per sample must stay O(1) on the PMA path."""
        d = DynamicIRS([float(i) for i in range(50000)], seed=55)
        d.stats.reset()
        t = 5000
        d.sample(100.5, 49000.5, t)
        assert d.stats.rejections < 12 * t
