"""Tests for the statistics toolkit (cross-checked against SciPy)."""

from __future__ import annotations

import math
import random

import pytest
from scipy import stats as scipy_stats

from repro.rng import RandomSource
from repro.stats import (
    chi_square_gof,
    chi_square_independence,
    ks_uniform_test,
    serial_correlation_test,
    uniformity_test,
    within_query_test,
)


class TestChiSquareGOF:
    def test_matches_scipy(self):
        observed = [18, 22, 25, 15, 20]
        expected = [20.0] * 5
        stat, p = chi_square_gof(observed, expected)
        ref = scipy_stats.chisquare(observed, expected)
        assert stat == pytest.approx(ref.statistic)
        assert p == pytest.approx(ref.pvalue)

    def test_rescales_expected(self):
        stat, p = chi_square_gof([10, 20, 30], [1.0, 2.0, 3.0])
        assert stat == pytest.approx(0.0)
        assert p == pytest.approx(1.0)

    def test_zero_expected_with_mass_is_infinite(self):
        stat, p = chi_square_gof([5, 5], [1.0, 0.0])
        assert math.isinf(stat) and p == 0.0

    def test_zero_expected_without_mass_ignored(self):
        stat, p = chi_square_gof([10, 0, 10], [1.0, 0.0, 1.0])
        assert stat == pytest.approx(0.0)

    def test_detects_bias(self):
        _stat, p = chi_square_gof([900, 100], [1.0, 1.0])
        assert p < 1e-10

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_square_gof([1], [1.0, 2.0])
        with pytest.raises(ValueError):
            chi_square_gof([0, 0], [1.0, 1.0])


class TestUniformityTest:
    def test_respects_multiplicity(self):
        population = [1.0, 1.0, 2.0]  # 1.0 should appear twice as often
        rng = random.Random(3)
        samples = [population[rng.randrange(3)] for _ in range(6000)]
        _stat, p = uniformity_test(samples, population)
        assert p > 1e-4

    def test_flags_ignoring_multiplicity(self):
        population = [1.0, 1.0, 2.0]
        rng = random.Random(4)
        samples = [random.Random(4).choice([1.0, 2.0]) for _ in range(3000)]
        samples = [[1.0, 2.0][rng.randrange(2)] for _ in range(3000)]
        _stat, p = uniformity_test(samples, population)
        assert p < 1e-6

    def test_sample_outside_population_rejected(self):
        with pytest.raises(KeyError):
            uniformity_test([9.0], [1.0, 2.0])


class TestIndependenceTests:
    def test_chi_square_independence_on_independent_table(self):
        rng = random.Random(5)
        table = [[0] * 3 for _ in range(3)]
        for _ in range(9000):
            table[rng.randrange(3)][rng.randrange(3)] += 1
        _stat, p = chi_square_independence(table)
        assert p > 1e-4

    def test_chi_square_independence_detects_coupling(self):
        table = [[1000, 10, 10], [10, 1000, 10], [10, 10, 1000]]
        _stat, p = chi_square_independence(table)
        assert p < 1e-10

    def test_degenerate_table(self):
        assert chi_square_independence([[5, 0], [7, 0]])[1] == 1.0
        with pytest.raises(ValueError):
            chi_square_independence([[0, 0]])

    def test_within_query_on_iid_series(self):
        rng = RandomSource(6)
        series = [rng.random() for _ in range(4000)]
        _stat, p = within_query_test(series)
        assert p > 1e-4

    def test_within_query_detects_repetition(self):
        series = [0.1, 0.9] * 1000  # deterministic alternation
        _stat, p = within_query_test(series, bins=2)
        assert p < 1e-10

    def test_serial_correlation_iid(self):
        rng = RandomSource(7)
        series = [rng.random() for _ in range(5000)]
        r, p = serial_correlation_test(series)
        assert abs(r) < 0.05 and p > 1e-4

    def test_serial_correlation_detects_trend(self):
        series = [math.sin(i / 10) for i in range(2000)]
        _r, p = serial_correlation_test(series)
        assert p < 1e-10

    def test_serial_correlation_needs_samples(self):
        with pytest.raises(ValueError):
            serial_correlation_test([1.0, 2.0])

    def test_constant_series(self):
        r, p = serial_correlation_test([3.0] * 100)
        assert r == 0.0 and p == 1.0


class TestKS:
    def test_uniform_passes(self):
        rng = RandomSource(8)
        samples = [rng.uniform(2.0, 5.0) for _ in range(3000)]
        d, p = ks_uniform_test(samples, 2.0, 5.0)
        assert p > 1e-4

    def test_detects_wrong_support(self):
        rng = RandomSource(9)
        samples = [rng.uniform(2.0, 3.0) for _ in range(3000)]
        _d, p = ks_uniform_test(samples, 2.0, 5.0)
        assert p < 1e-10

    def test_validation(self):
        with pytest.raises(ValueError):
            ks_uniform_test([], 0.0, 1.0)
        with pytest.raises(ValueError):
            ks_uniform_test([0.5], 1.0, 1.0)
