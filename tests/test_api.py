"""Public API surface checks: exports exist and carry documentation."""

from __future__ import annotations

import inspect

import pytest

import repro
from repro import Interval, InvalidQueryError, QueryStats


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_version():
    assert repro.__version__.count(".") == 2


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.core.static_irs",
        "repro.core.dynamic_irs",
        "repro.core.directory",
        "repro.core.weighted_irs",
        "repro.core.weighted_dynamic",
        "repro.core.em_irs",
        "repro.core.without_replacement",
        "repro.cli",
        "repro.stats.estimators",
        "repro.alias.walker",
        "repro.alias.dynamic",
        "repro.baselines.treap",
        "repro.baselines.pma",
        "repro.em.device",
        "repro.em.pool",
        "repro.em.btree",
        "repro.em.sorted_file",
        "repro.stats.chisquare",
        "repro.stats.independence",
        "repro.workloads.datasets",
        "repro.workloads.queries",
    ],
)
def test_public_items_are_documented(module_name):
    """Every public class/function in every module has a docstring, and
    every public method of public classes does too."""
    module = __import__(module_name, fromlist=["_"])
    assert module.__doc__, f"{module_name} missing module docstring"
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        assert obj.__doc__, f"{module_name}.{name} missing docstring"
        if inspect.isclass(obj):
            for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                if meth_name.startswith("_"):
                    continue
                if meth.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited
                # getdoc() walks the MRO, so overriding an already-documented
                # interface method without restating its docstring is fine.
                doc = inspect.getdoc(meth) or inspect.getdoc(
                    getattr(obj.__mro__[1], meth_name, None)
                )
                assert doc, f"{module_name}.{name}.{meth_name} undocumented"


def test_trees_shim_warns_and_reexports():
    """The retired ``repro.trees`` package still resolves, with a warning."""
    import importlib
    import sys
    import warnings

    saved = {
        name: sys.modules.pop(name, None)
        for name in ("repro.trees", "repro.trees.treap", "repro.trees.pma")
    }
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            trees = importlib.import_module("repro.trees")
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        from repro.baselines.pma import PackedMemoryArray
        from repro.baselines.treap import ChunkTreap

        assert trees.ChunkTreap is ChunkTreap
        assert trees.PackedMemoryArray is PackedMemoryArray
        assert importlib.import_module("repro.trees.treap").ChunkTreap is ChunkTreap
        assert (
            importlib.import_module("repro.trees.pma").PackedMemoryArray
            is PackedMemoryArray
        )
    finally:
        for name, module in saved.items():
            if module is not None:
                sys.modules[name] = module


class TestInterval:
    def test_validation(self):
        with pytest.raises(InvalidQueryError):
            Interval(2.0, 1.0)

    def test_contains(self):
        interval = Interval(1.0, 2.0)
        assert interval.contains(1.0) and interval.contains(2.0)
        assert not interval.contains(2.5)
        assert interval.length == 1.0


class TestQueryStats:
    def test_merge_and_reset(self):
        a = QueryStats(queries=1, samples_returned=5, extra={"x": 1})
        b = QueryStats(queries=2, rejections=3, extra={"x": 2, "y": 1})
        a.merge(b)
        assert a.queries == 3 and a.rejections == 3
        assert a.extra == {"x": 3, "y": 1}
        a.reset()
        assert a.queries == 0 and a.extra == {}
