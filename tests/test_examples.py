"""Each example script must run end-to-end (scaled down where supported)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run("quickstart.py")
    assert "StaticIRS" in out
    assert "DynamicIRS" in out
    assert "WeightedStaticIRS" in out
    assert "ExternalIRS" in out
    assert "t/B amortization" in out


def test_online_aggregation():
    out = run("online_aggregation.py", "50000")
    assert "exact mean amount" in out
    assert "speedup vs scan" in out
    assert "independent samples" in out


def test_streaming_percentiles():
    out = run("streaming_percentiles.py", "15000")
    assert "p50" in out and "p95" in out and "p99" in out
    assert ">=10ms band" in out


def test_external_memory_demo():
    out = run("external_memory_demo.py")
    assert "mean block I/Os per query" in out
    assert "ExternalIRS" in out
    assert "sample buffers" in out


def test_weighted_auction():
    out = run("weighted_auction.py", "8000")
    assert "win rate" in out
    assert "consistent" in out
    assert "INCONSISTENT" not in out


def test_serving_demo():
    out = run("serving_demo.py", "15000")
    assert "32 concurrent mean estimates" in out
    assert "seeded request replays byte-identically: True" in out
    assert "typed error: empty_range" in out
    assert "coalesce factor" in out
