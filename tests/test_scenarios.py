"""Statistical acceptance gates for the scenario tier.

Each new sampling path lands behind its own gate, in the shared
``statgates`` discipline (fixed alpha, seeded retry-once):

* windowed uniform  — chi-square uniformity over exactly the live window;
* windowed decayed  — chi-square GOF against the ``decay**age`` masses;
* stratified        — exact-count verification plus the pooled-draw law
                      (allocation by in-range count makes the pooled output
                      distribution-identical to one flat draw);
* without-replacement — no duplicate ranks ever, and marginal uniformity
                      (every point appears in a ``t``-subset with
                      probability ``t/K``);
* adaptive estimate — CI coverage calibration across independent seeds.

Every path is also pinned byte-identical under a fixed seed;
``test_scenarios_serve.py`` extends that through the server.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest
from statgates import gof_gate, uniformity_gate

from repro import (
    DynamicIRS,
    EmptyRangeError,
    InvalidQueryError,
    ShardedIRS,
    StaticIRS,
    WeightedDynamicIRS,
    WindowedIRS,
    adaptive_estimate,
    sample_stratified,
    sample_without_replacement_bulk,
)
from repro.rng import derive_seed, generator


class TestWindowedSemantics:
    def test_len_tracks_min_window_arrivals(self):
        w = WindowedIRS(window=10, seed=1)
        assert len(w) == 0 and w.arrivals == 0
        w.advance([float(i) for i in range(7)])
        assert len(w) == 7 and w.arrivals == 7
        w.advance([float(i) for i in range(7, 25)])
        assert len(w) == 10 and w.arrivals == 25
        assert w.live() == [float(i) for i in range(15, 25)]

    def test_expired_keys_never_surface(self):
        w = WindowedIRS(window=16, seed=2, expiry_batch=5)
        for i in range(200):
            w.insert(float(i))
            assert w.count(-1.0, 1e9) == min(i + 1, 16)
            oldest_live = max(0, i - 15)
            if oldest_live:
                # Everything before the window start is gone from reads,
                # even while expiry is still batched internally.
                assert w.count(-1.0, oldest_live - 0.5) == 0
        assert w.report(0.0, 1e9) == [float(i) for i in range(184, 200)]
        w.check_invariants()

    def test_from_stream_matches_advance(self):
        stream = [float((i * 37) % 101) for i in range(500)]
        a = WindowedIRS.from_stream(stream, window=64, seed=9)
        b = WindowedIRS(window=64, seed=9)
        b.advance(stream)
        assert a.live() == b.live()
        assert a.arrivals == b.arrivals == 500
        assert list(a.sample_bulk(0.0, 101.0, 50, seed=7)) == list(
            b.sample_bulk(0.0, 101.0, 50, seed=7)
        )

    def test_duplicates_expire_one_occurrence_at_a_time(self):
        w = WindowedIRS(window=4, seed=3, decay=0.9, expiry_batch=1)
        w.advance([5.0, 5.0, 5.0, 7.0, 5.0, 7.0])
        assert sorted(w.live()) == [5.0, 5.0, 7.0, 7.0]
        assert w.count(4.9, 5.1) == 2
        w.check_invariants()

    def test_decay_validation(self):
        with pytest.raises(InvalidQueryError):
            WindowedIRS(window=0)
        with pytest.raises(InvalidQueryError):
            WindowedIRS(window=4, decay=1.5)
        with pytest.raises(InvalidQueryError):
            WindowedIRS(window=100_000, decay=1e-4)  # underflows the window

    def test_windowed_seeded_draws_are_reproducible(self):
        stream = [float((i * 13) % 211) for i in range(400)]
        for decay in (None, 0.97):
            a = WindowedIRS.from_stream(stream, window=100, seed=11, decay=decay)
            b = WindowedIRS.from_stream(stream, window=100, seed=11, decay=decay)
            assert list(a.sample_bulk(0.0, 211.0, 200, seed=5)) == list(
                b.sample_bulk(0.0, 211.0, 200, seed=5)
            )


class TestWindowedGates:
    def test_uniform_window_chi_square_gate(self):
        stream = [float(i) for i in range(600)]
        w = WindowedIRS.from_stream(stream, window=128, seed=21)
        population = w.live()
        uniformity_gate(
            lambda attempt: w.sample(472.0, 599.0, 12_000),
            population,
            label="windowed uniform sampling",
        )

    def test_decayed_window_gof_gate(self):
        stream = [float(i) for i in range(200)]
        decay = 0.95
        w = WindowedIRS.from_stream(stream, window=64, seed=22, decay=decay)
        live = w.live()  # oldest first: ages W-1 .. 0
        expected = [decay ** (len(live) - 1 - k) for k in range(len(live))]

        def counts(attempt):
            got = Counter(w.sample_bulk(0.0, 1e9, 40_000).tolist())
            return [got.get(v, 0) for v in live]

        gof_gate(counts, expected, label="windowed decayed sampling")

    def test_decayed_window_survives_rebuild_churn(self):
        # Tiny expiry batches + duplicate arrivals force the rebuild path.
        w = WindowedIRS(window=32, seed=23, decay=0.9, expiry_batch=1)
        for i in range(300):
            w.advance([float(i % 20)])
        w.check_invariants()
        live = w.live()
        expected_mass = Counter()
        for k, v in enumerate(live):
            expected_mass[v] += 0.9 ** (len(live) - 1 - k)
        values = sorted(expected_mass)

        def counts(attempt):
            got = Counter(w.sample_bulk(0.0, 1e9, 30_000).tolist())
            return [got.get(v, 0) for v in values]

        gof_gate(
            counts,
            [expected_mass[v] for v in values],
            label="windowed decayed sampling after rebuild churn",
        )


STRATIFIED_FACTORIES = {
    "static": lambda data: StaticIRS(data, seed=31),
    "dynamic": lambda data: DynamicIRS(data, seed=32),
    "sharded": lambda data: ShardedIRS(data, num_shards=4, seed=33),
    "weighted-dynamic": lambda data: WeightedDynamicIRS(
        data, [1.0 + (i % 3) for i in range(len(data))], seed=34
    ),
    "windowed": lambda data: WindowedIRS(data, window=len(data), seed=35),
}


class TestStratified:
    DATA = [float(i) for i in range(500)]
    STRATA = [(0.0, 99.0), (100.0, 349.0), (350.0, 499.0)]

    @pytest.mark.parametrize("name", STRATIFIED_FACTORIES)
    def test_exact_counts_and_containment(self, name):
        sampler = STRATIFIED_FACTORIES[name](self.DATA)
        for t in (0, 1, 17, 400):
            blocks = sample_stratified(sampler, self.STRATA, t, seed=77)
            assert len(blocks) == len(self.STRATA)
            assert sum(len(b) for b in blocks) == t
            for (lo, hi), block in zip(self.STRATA, blocks):
                assert all(lo <= float(x) <= hi for x in block)

    @pytest.mark.parametrize("name", STRATIFIED_FACTORIES)
    def test_seeded_calls_are_byte_identical(self, name):
        sampler = STRATIFIED_FACTORIES[name](self.DATA)
        a = sample_stratified(sampler, self.STRATA, 120, seed=88)
        b = sample_stratified(sampler, self.STRATA, 120, seed=88)
        assert [list(map(float, x)) for x in a] == [list(map(float, x)) for x in b]

    def test_allocation_matches_shard_scatter_math(self):
        """The split is the documented multinomial + derived task seeds."""
        d = DynamicIRS(self.DATA, seed=41)
        seed = 4242
        got = sample_stratified(d, self.STRATA, 100, seed=seed)
        qgen = generator(seed)
        counts = [d.count(lo, hi) for lo, hi in self.STRATA]
        split = qgen.multinomial(100, np.asarray(counts) / sum(counts)).tolist()
        entropy = int(qgen.integers(1 << 63))
        expected = [
            d.sample_bulk(lo, hi, tj, seed=derive_seed(entropy, j))
            for j, ((lo, hi), tj) in enumerate(zip(self.STRATA, split))
        ]
        assert [list(map(float, x)) for x in got] == [
            list(map(float, x)) for x in expected
        ]

    def test_pooled_draw_is_distribution_identical_to_flat_sampling(self):
        """Allocation by in-range count ⇒ pooled output is uniform on the union."""
        d = DynamicIRS(self.DATA, seed=42)
        union = [
            v for v in self.DATA
            if any(lo <= v <= hi for lo, hi in self.STRATA)
        ]

        def pooled(attempt):
            blocks = sample_stratified(d, self.STRATA, 12_000)
            return [float(x) for block in blocks for x in block]

        uniformity_gate(pooled, union, label="stratified pooled draw")

    def test_degenerate_inputs(self):
        d = DynamicIRS(self.DATA, seed=43)
        assert sample_stratified(d, [], 0) == []
        with pytest.raises(InvalidQueryError):
            sample_stratified(d, [], 5)
        with pytest.raises(InvalidQueryError):
            sample_stratified(d, [(1.0,)], 5)
        with pytest.raises(InvalidQueryError):
            sample_stratified(d, [(5.0, 1.0)], 5)
        with pytest.raises(EmptyRangeError):
            sample_stratified(d, [(1000.0, 2000.0)], 5)


WR_FACTORIES = {
    "static": lambda data: StaticIRS(data, seed=51),
    "dynamic": lambda data: DynamicIRS(data, seed=52),
    "sharded": lambda data: ShardedIRS(data, num_shards=4, seed=53),
    "windowed": lambda data: WindowedIRS(data, window=len(data), seed=54),
}


class TestWithoutReplacementBulk:
    DATA = [float(i) for i in range(120)]

    @pytest.mark.parametrize("name", WR_FACTORIES)
    def test_no_duplicates_and_exact_size(self, name):
        sampler = WR_FACTORIES[name](self.DATA)
        for seed in range(20):
            got = sample_without_replacement_bulk(sampler, 10.0, 89.0, 40, seed=seed)
            values = [float(x) for x in got]
            assert len(values) == 40
            assert len(set(values)) == 40  # data is distinct ⇒ ranks ⇔ values
            assert all(10.0 <= v <= 89.0 for v in values)

    def test_multiset_data_dedupes_ranks_not_values(self):
        data = [float(i % 10) for i in range(100)]  # each value 10 times
        d = DynamicIRS(data, seed=55)
        got = [float(x) for x in sample_without_replacement_bulk(d, 0.0, 9.0, 100, seed=1)]
        assert Counter(got) == Counter(data)  # a full draw returns the multiset

    def test_bulk_matches_scalar_law_marginal_uniformity(self):
        """Every point lands in a ``t``-subset with probability ``t/K``."""
        d = DynamicIRS(self.DATA, seed=56)

        def appearance_counts(attempt):
            hits = Counter()
            for trial in range(3000):
                seed = derive_seed(9090, attempt, trial)
                for x in sample_without_replacement_bulk(d, 0.0, 59.0, 10, seed=seed):
                    hits[float(x)] += 1
            return [hits.get(float(v), 0) for v in range(60)]

        gof_gate(
            appearance_counts,
            [1.0] * 60,
            label="without-replacement marginal uniformity",
        )

    def test_seeded_subsets_are_byte_identical(self):
        for name, factory in WR_FACTORIES.items():
            sampler = factory(self.DATA)
            a = sample_without_replacement_bulk(sampler, 0.0, 119.0, 30, seed=123)
            b = sample_without_replacement_bulk(sampler, 0.0, 119.0, 30, seed=123)
            assert list(a) == list(b), name

    def test_oversized_and_empty_requests(self):
        d = DynamicIRS(self.DATA, seed=57)
        with pytest.raises(InvalidQueryError):
            sample_without_replacement_bulk(d, 0.0, 9.0, 11, seed=1)
        with pytest.raises(EmptyRangeError):
            sample_without_replacement_bulk(d, 500.0, 600.0, 1, seed=1)
        assert len(sample_without_replacement_bulk(d, 0.0, 9.0, 0, seed=1)) == 0
        w = WeightedDynamicIRS(self.DATA, [1.0] * len(self.DATA), seed=58)
        with pytest.raises(InvalidQueryError):
            sample_without_replacement_bulk(w, 0.0, 9.0, 2, seed=1)

    def test_sharded_bulk_method_delegates(self):
        s = ShardedIRS(self.DATA, num_shards=3, seed=59)
        got = s.sample_without_replacement_bulk(0.0, 119.0, 25, seed=7)
        twin = sample_without_replacement_bulk(s, 0.0, 119.0, 25, seed=7)
        assert list(got) == list(twin)
        blocks = s.sample_stratified([(0.0, 59.0), (60.0, 119.0)], 30, seed=8)
        assert sum(len(b) for b in blocks) == 30


class TestAdaptiveEstimate:
    DATA = [float(i) for i in range(1000)]

    def test_converges_and_reports_budget(self):
        d = DynamicIRS(self.DATA, seed=61)
        result = adaptive_estimate(
            d, 0.0, 999.0, target_half_width=20.0, batch=256, seed=5
        )
        assert result.converged
        assert result.half_width <= 20.0
        assert result.draws == result.batches * 256
        assert result.draws <= 65536

    def test_budget_exhaustion_reports_unconverged(self):
        d = DynamicIRS(self.DATA, seed=62)
        result = adaptive_estimate(
            d, 0.0, 999.0, target_half_width=0.001, batch=64, max_draws=256, seed=5
        )
        assert not result.converged
        assert result.draws == 256

    def test_seeded_runs_are_byte_identical(self):
        d = DynamicIRS(self.DATA, seed=63)
        a = adaptive_estimate(d, 0.0, 999.0, target_half_width=25.0, seed=99)
        b = adaptive_estimate(d, 0.0, 999.0, target_half_width=25.0, seed=99)
        assert a == b

    def test_validation(self):
        d = DynamicIRS(self.DATA, seed=64)
        with pytest.raises(InvalidQueryError):
            adaptive_estimate(d, 0.0, 1.0, target_half_width=0.0)
        with pytest.raises(InvalidQueryError):
            adaptive_estimate(d, 0.0, 1.0, target_half_width=1.0, batch=0)
        with pytest.raises(InvalidQueryError):
            adaptive_estimate(d, 0.0, 1.0, target_half_width=1.0, confidence=1.5)
        with pytest.raises(EmptyRangeError):
            adaptive_estimate(d, 5000.0, 6000.0, target_half_width=1.0)

    def test_coverage_calibration_gate(self):
        """~95% of seeded runs must bracket the true in-range mean.

        Sequential stopping (convergence checked at batch boundaries)
        nudges nominal coverage down slightly, so the gate sits at 88%
        — far above what any mis-calibrated interval would achieve, far
        below the ~95% an honest one delivers.
        """
        d = DynamicIRS(self.DATA, seed=65)
        lo, hi = 100.0, 899.0
        in_range = [v for v in self.DATA if lo <= v <= hi]
        truth = sum(in_range) / len(in_range)
        runs = 200
        covered = 0
        for trial in range(runs):
            result = adaptive_estimate(
                d, lo, hi,
                target_half_width=15.0, batch=128, max_draws=8192,
                seed=derive_seed(7777, trial),
            )
            assert result.converged
            if abs(result.estimate - truth) <= result.half_width:
                covered += 1
        assert covered >= int(0.88 * runs), f"coverage {covered}/{runs}"
