"""The uniform snapshot surface: export -> from_sorted across every kind.

Satellite of the durability PR: every sampler kind must round-trip through
its sorted planes — ``export_sorted`` / ``export_sorted_pairs`` out,
``from_sorted`` (via :func:`repro.store.build_from_sorted`) back — and the
rebuilt structure must answer count, weight, and *seeded* sample queries
identically to the original.  The matrix also runs the planes through
:class:`repro.store.SnapshotStore` bytes on disk, so the plane codec and
manifest are exercised, not just the in-memory constructors.
"""

from __future__ import annotations

import pytest

from repro import (
    DynamicIRS,
    ExternalIRS,
    ShardedIRS,
    StaticIRS,
    WeightedDynamicIRS,
    WeightedStaticIRS,
)
from repro.errors import InvalidQueryError
from repro.store import SnapshotStore, build_from_sorted, snapshot_spec
from repro.workloads import gaussian_mixture

DATA = gaussian_mixture(900, clusters=3, seed=41)
WEIGHTS = [0.25 + (i % 9) for i in range(len(DATA))]
SORTED = sorted(DATA)
QUERIES = [
    (SORTED[50], SORTED[-50]),
    (SORTED[200], SORTED[400]),
    (SORTED[0], SORTED[0]),
    (SORTED[-1] + 1.0, SORTED[-1] + 2.0),
]


def build_static():
    return StaticIRS(DATA, seed=3)


def build_dynamic():
    return DynamicIRS(DATA, seed=3)


def build_weighted():
    return WeightedStaticIRS(DATA, WEIGHTS, seed=3)


def build_weighted_dynamic():
    return WeightedDynamicIRS(DATA, WEIGHTS, seed=3)


def build_external():
    return ExternalIRS(DATA, block_size=64, seed=3)


def build_sharded():
    return ShardedIRS(DATA, num_shards=3, seed=3, shard_kind="dynamic")


def build_sharded_weighted():
    return ShardedIRS(
        DATA, num_shards=3, weights=WEIGHTS, seed=3, shard_kind="weighted-dynamic"
    )


def build_sharded_external():
    return ShardedIRS(
        DATA, num_shards=2, seed=3, shard_kind="external", block_size=64
    )


BUILDERS = {
    "static": build_static,
    "dynamic": build_dynamic,
    "weighted": build_weighted,
    "weighted-dynamic": build_weighted_dynamic,
    "external": build_external,
    "sharded": build_sharded,
    "sharded-weighted": build_sharded_weighted,
    "sharded-external": build_sharded_external,
}


def assert_equivalent(original, rebuilt, *, weighted):
    """Same sorted state, same counts/weights, same seeded draws."""
    assert list(rebuilt.export_sorted()) == list(original.export_sorted())
    if weighted:
        ov, ow = original.export_sorted_pairs()
        rv, rw = rebuilt.export_sorted_pairs()
        assert list(rv) == list(ov)
        assert list(rw) == list(ow)
    for lo, hi in QUERIES:
        assert rebuilt.count(lo, hi) == original.count(lo, hi)
    if hasattr(original, "peek_counts"):
        assert list(rebuilt.peek_counts(QUERIES)) == list(original.peek_counts(QUERIES))
    if weighted and hasattr(original, "peek_weights"):
        assert list(rebuilt.peek_weights(QUERIES)) == list(
            original.peek_weights(QUERIES)
        )
    lo, hi = QUERIES[0]
    for seed, t in ((11, 40), (12, 1), (13, 7)):
        assert list(rebuilt.sample_bulk(lo, hi, t, seed=seed)) == list(
            original.sample_bulk(lo, hi, t, seed=seed)
        )


@pytest.mark.parametrize("kind", sorted(BUILDERS))
def test_spec_roundtrip_in_memory(kind):
    original = BUILDERS[kind]()
    spec = snapshot_spec(original)
    if spec["weighted"]:
        values, weights = original.export_sorted_pairs()
    else:
        values, weights = original.export_sorted(), None
    rebuilt = build_from_sorted(spec, values, weights, seed=3)
    assert_equivalent(original, rebuilt, weighted=spec["weighted"])
    for irs in (original, rebuilt):
        close = getattr(irs, "close", None)
        if close:
            close()


@pytest.mark.parametrize("kind", sorted(BUILDERS))
def test_roundtrip_through_snapshot_bytes(kind, tmp_path):
    original = BUILDERS[kind]()
    store = SnapshotStore(tmp_path / "snaps")
    store.save({"s": original}, wal_seq=1)
    spec, values, weights = store.load()["s"]
    rebuilt = build_from_sorted(spec, values, weights, seed=3)
    assert_equivalent(original, rebuilt, weighted=spec["weighted"])
    for irs in (original, rebuilt):
        close = getattr(irs, "close", None)
        if close:
            close()


# -- surface details gained in this PR ---------------------------------------


def test_weighted_static_from_sorted_validates_order():
    with pytest.raises(ValueError):
        WeightedStaticIRS.from_sorted([2.0, 1.0], [1.0, 1.0])


def test_weighted_static_from_sorted_matches_constructor():
    values, weights = build_weighted().export_sorted_pairs()
    rebuilt = WeightedStaticIRS.from_sorted(values, weights, seed=3)
    assert list(rebuilt.sample_bulk(QUERIES[0][0], QUERIES[0][1], 8, seed=4)) == list(
        build_weighted().sample_bulk(QUERIES[0][0], QUERIES[0][1], 8, seed=4)
    )


def test_weighted_dynamic_export_sorted_matches_pairs():
    wd = build_weighted_dynamic()
    values, _weights = wd.export_sorted_pairs()
    assert wd.export_sorted().tolist() == list(values)
    assert wd.export_sorted().tolist() == SORTED


def test_sharded_export_preserves_order_after_updates():
    sharded = build_sharded()
    sharded.insert_bulk([SORTED[0] - 1.0, SORTED[-1] + 1.0, SORTED[10]])
    exported = sharded.export_sorted().tolist()
    assert exported == sorted(exported)
    assert len(exported) == len(DATA) + 3


def test_sharded_unweighted_rejects_pair_export():
    with pytest.raises(InvalidQueryError):
        build_sharded().export_sorted_pairs()


def test_empty_sharded_exports_empty_plane():
    empty = ShardedIRS([], num_shards=2, seed=1)
    assert empty.export_sorted().tolist() == []
