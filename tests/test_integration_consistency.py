"""Cross-structure consistency: every structure must agree on the data.

The samplers implement wildly different machinery (sorted array, chunked
directory, block device, segment tree) but expose the same logical multiset,
so their counts and reports must agree exactly on arbitrary queries — and
their samples must be members of that agreed-upon set.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DynamicIRS, ExternalIRS, StaticIRS, WeightedStaticIRS
from repro.baselines import ReportThenSample, TreeWalkSampler


def build_all(data):
    return {
        "static": StaticIRS(data, seed=1),
        "dynamic": DynamicIRS(data, seed=2),
        "external": ExternalIRS(data, block_size=32, seed=3),
        "weighted": WeightedStaticIRS(data, [1.0] * len(data), seed=4),
        "report": ReportThenSample(data, seed=5),
        "treewalk": TreeWalkSampler(data, seed=6),
    }


class TestAgreement:
    def test_counts_and_reports_agree(self, clustered_data):
        structures = build_all(clustered_data)
        rng = random.Random(7)
        for _ in range(25):
            lo = rng.uniform(-0.2, 1.2)
            hi = lo + rng.uniform(0.0, 0.8)
            counts = {name: s.count(lo, hi) for name, s in structures.items()}
            assert len(set(counts.values())) == 1, counts
            reports = {name: tuple(s.report(lo, hi)) for name, s in structures.items()}
            assert len(set(reports.values())) == 1

    def test_samples_are_members_everywhere(self, zipf_data):
        structures = build_all(zipf_data)
        ordered = sorted(zipf_data)
        lo, hi = ordered[len(ordered) // 4], ordered[(3 * len(ordered)) // 4]
        members = set(v for v in ordered if lo <= v <= hi)
        for name, s in structures.items():
            for v in s.sample(lo, hi, 64):
                assert v in members, name


@given(
    data=st.lists(st.integers(0, 100), min_size=1, max_size=120),
    lo=st.integers(-5, 105),
    width=st.integers(0, 60),
)
@settings(max_examples=60, deadline=None)
def test_property_agreement(data, lo, width):
    values = [float(v) for v in data]
    hi = float(lo + width)
    static = StaticIRS(values, seed=8)
    dynamic = DynamicIRS(values, seed=9)
    external = ExternalIRS(values, block_size=8, seed=10)
    expected = sorted(v for v in values if lo <= v <= hi)
    for s in (static, dynamic, external):
        assert s.count(lo, hi) == len(expected)
        assert s.report(lo, hi) == expected


class TestDynamicConvergesToStatic:
    def test_incremental_build_equals_bulk_build(self):
        rng = random.Random(11)
        values = [rng.uniform(0, 1) for _ in range(2000)]
        bulk = DynamicIRS(values, seed=12)
        incremental = DynamicIRS(seed=13)
        for v in values:
            incremental.insert(v)
        assert bulk.values() == incremental.values()
        incremental.check_invariants()

    def test_teardown_and_rebuild(self):
        rng = random.Random(14)
        values = [rng.uniform(0, 1) for _ in range(1500)]
        d = DynamicIRS(values, seed=15)
        for v in values:
            d.delete(v)
        assert len(d) == 0
        for v in values[:100]:
            d.insert(v)
        assert d.values() == sorted(values[:100])
        d.check_invariants()
