"""Tests for the without-replacement wrappers."""

from __future__ import annotations

from collections import Counter

import pytest

from repro import (
    DynamicIRS,
    InvalidQueryError,
    StaticIRS,
    sample_ranks_without_replacement,
    sample_without_replacement,
)
from repro.rng import RandomSource
from repro.stats import chi_square_gof


class TestFloydRanks:
    def test_distinct_and_in_range(self):
        rng = RandomSource(1)
        for _ in range(50):
            ranks = sample_ranks_without_replacement(rng, 10, 40, 12)
            assert len(ranks) == 12
            assert len(set(ranks)) == 12
            assert all(10 <= r < 40 for r in ranks)

    def test_full_population(self):
        rng = RandomSource(2)
        ranks = sample_ranks_without_replacement(rng, 0, 5, 5)
        assert sorted(ranks) == [0, 1, 2, 3, 4]

    def test_too_many_requested(self):
        rng = RandomSource(3)
        with pytest.raises(InvalidQueryError):
            sample_ranks_without_replacement(rng, 0, 5, 6)

    def test_zero_requested(self):
        rng = RandomSource(4)
        assert sample_ranks_without_replacement(rng, 0, 5, 0) == []

    def test_subsets_are_uniform(self):
        """Every 2-subset of {0..4} must appear with equal frequency."""
        rng = RandomSource(5)
        counts: Counter[frozenset] = Counter()
        trials = 20_000
        for _ in range(trials):
            counts[frozenset(sample_ranks_without_replacement(rng, 0, 5, 2))] += 1
        assert len(counts) == 10
        _stat, p = chi_square_gof(list(counts.values()), [1.0] * 10)
        assert p > 1e-4

    def test_positions_are_exchangeable(self):
        """After the shuffle, the first position is uniform over the range."""
        rng = RandomSource(6)
        first = Counter(
            sample_ranks_without_replacement(rng, 0, 6, 3)[0] for _ in range(12_000)
        )
        _stat, p = chi_square_gof([first[i] for i in range(6)], [1.0] * 6)
        assert p > 1e-4


class TestWrapper:
    def test_static_path_uses_ranks(self):
        values = [1.0, 1.0, 2.0, 3.0]  # duplicates: rank-dedup must allow both 1.0s
        s = StaticIRS(values, seed=7)
        out = sample_without_replacement(s, 0.0, 5.0, 4, rng=RandomSource(8))
        assert sorted(out) == sorted(values)

    def test_generic_report_path(self):
        d = DynamicIRS([float(i) for i in range(30)], seed=9)
        out = sample_without_replacement(d, 5.0, 14.0, 10, rng=RandomSource(10))
        assert sorted(out) == [float(i) for i in range(5, 15)]

    def test_generic_rejection_path(self):
        d = DynamicIRS([float(i) for i in range(1000)], seed=11)
        out = sample_without_replacement(
            d, 0.0, 999.0, 20, rng=RandomSource(12), assume_distinct=True
        )
        assert len(out) == 20
        assert len(set(out)) == 20

    def test_request_exceeding_population(self):
        d = DynamicIRS([1.0, 2.0], seed=13)
        with pytest.raises(InvalidQueryError):
            sample_without_replacement(d, 0.0, 5.0, 3, rng=RandomSource(14))

    def test_zero_requested(self):
        d = DynamicIRS([1.0], seed=15)
        assert sample_without_replacement(d, 0.0, 5.0, 0, rng=RandomSource(16)) == []

    def test_report_path_subsets_uniform(self):
        d = DynamicIRS([float(i) for i in range(5)], seed=17)
        rng = RandomSource(18)
        counts: Counter[frozenset] = Counter()
        for _ in range(15_000):
            counts[
                frozenset(sample_without_replacement(d, 0.0, 4.0, 2, rng=rng))
            ] += 1
        assert len(counts) == 10
        _stat, p = chi_square_gof(list(counts.values()), [1.0] * 10)
        assert p > 1e-4
