"""Unit + property tests for the implicit treap (retired chunk-directory ablation substrate)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import RandomSource
from repro.baselines.treap import ChunkTreap


class FakeChunk:
    """Minimal payload with the size/min/max protocol."""

    __slots__ = ("data", "node")

    def __init__(self, data):
        self.data = sorted(data)
        self.node = None

    @property
    def size(self):
        return len(self.data)

    @property
    def min_value(self):
        return self.data[0]

    @property
    def max_value(self):
        return self.data[-1]

    def __repr__(self):
        return f"FakeChunk({self.data})"


def build(payload_lists) -> tuple[ChunkTreap, list[FakeChunk]]:
    treap = ChunkTreap(RandomSource(42))
    chunks = []
    node = None
    for data in payload_lists:
        chunk = FakeChunk(data)
        node = (
            treap.insert_first(chunk) if node is None else treap.insert_after(node, chunk)
        )
        chunk.node = node  # type: ignore[attr-defined]
        chunks.append(chunk)
    return treap, chunks


class TestBasics:
    def test_empty(self):
        treap = ChunkTreap(RandomSource(0))
        assert len(treap) == 0
        assert treap.first() is None and treap.last() is None
        assert treap.first_with_max_ge(0.0) is None
        assert treap.last_with_min_le(0.0) is None

    def test_order_preserved(self):
        treap, chunks = build([[1, 2], [3], [4, 5, 6]])
        assert [node.payload for node in treap] == chunks
        assert treap.first().payload is chunks[0]
        assert treap.last().payload is chunks[-1]

    def test_total_points(self):
        treap, _ = build([[1, 2], [3], [4, 5, 6]])
        assert treap.total_points == 6

    def test_rank_and_select_roundtrip(self):
        treap, chunks = build([[i] for i in range(25)])
        for i, chunk in enumerate(chunks):
            assert treap.rank(chunk.node) == i
            assert treap.select(i).payload is chunk
        with pytest.raises(IndexError):
            treap.select(25)

    def test_successor_predecessor(self):
        treap, chunks = build([[i] for i in range(10)])
        for i in range(9):
            assert treap.successor(chunks[i].node).payload is chunks[i + 1]
            assert treap.predecessor(chunks[i + 1].node).payload is chunks[i]
        assert treap.successor(chunks[-1].node) is None
        assert treap.predecessor(chunks[0].node) is None

    def test_insert_after_middle(self):
        treap, chunks = build([[0], [10]])
        mid = FakeChunk([5])
        treap.insert_after(chunks[0].node, mid)
        assert [n.payload.min_value for n in treap] == [0, 5, 10]
        treap.check_invariants()

    def test_delete(self):
        treap, chunks = build([[i] for i in range(10)])
        treap.delete(chunks[4].node)
        assert [n.payload.min_value for n in treap] == [0, 1, 2, 3, 5, 6, 7, 8, 9]
        treap.check_invariants()

    def test_delete_all(self):
        treap, chunks = build([[i] for i in range(5)])
        order = [2, 0, 4, 1, 3]
        for i in order:
            treap.delete(chunks[i].node)
            treap.check_invariants()
        assert len(treap) == 0


class TestAggregates:
    def test_prefix_points(self):
        treap, _ = build([[1] * 3, [2] * 5, [3] * 7])
        assert treap.prefix_points(0) == 0
        assert treap.prefix_points(1) == 3
        assert treap.prefix_points(2) == 8
        assert treap.prefix_points(3) == 15

    def test_points_between(self):
        treap, chunks = build([[1] * 3, [2] * 5, [3] * 7, [4] * 2])
        assert treap.points_between(chunks[0].node, chunks[3].node) == 12
        assert treap.points_between(chunks[0].node, chunks[1].node) == 0
        assert treap.points_between(chunks[1].node, chunks[3].node) == 7

    def test_refresh_after_payload_change(self):
        treap, chunks = build([[1, 2], [5, 6]])
        chunks[0].data.append(3)
        chunks[0].data.sort()
        treap.refresh(chunks[0].node)
        assert treap.total_points == 5
        treap.check_invariants()


class TestBoundarySearch:
    def test_first_with_max_ge(self):
        treap, chunks = build([[1, 3], [5, 7], [9, 11]])
        assert treap.first_with_max_ge(0).payload is chunks[0]
        assert treap.first_with_max_ge(3).payload is chunks[0]
        assert treap.first_with_max_ge(4).payload is chunks[1]
        assert treap.first_with_max_ge(11).payload is chunks[2]
        assert treap.first_with_max_ge(12) is None

    def test_last_with_min_le(self):
        treap, chunks = build([[1, 3], [5, 7], [9, 11]])
        assert treap.last_with_min_le(0) is None
        assert treap.last_with_min_le(1).payload is chunks[0]
        assert treap.last_with_min_le(8).payload is chunks[1]
        assert treap.last_with_min_le(100).payload is chunks[2]

    def test_duplicate_boundaries(self):
        """Equal keys spanning chunks: position-ordering keeps this exact."""
        treap, chunks = build([[1, 2], [2, 2], [2, 5]])
        assert treap.first_with_max_ge(2).payload is chunks[0]
        assert treap.last_with_min_le(2).payload is chunks[2]


@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]), st.integers(0, 1_000_000)),
        max_size=120,
    )
)
@settings(max_examples=60, deadline=None)
def test_random_operations_match_list_model(ops):
    """Model-based: the treap's order must equal a plain list's after any
    interleaving of position-based inserts and deletes."""
    treap = ChunkTreap(RandomSource(7))
    model: list[FakeChunk] = []
    rng = random.Random(99)
    for op, seed in ops:
        if op == "insert" or not model:
            chunk = FakeChunk([seed])
            if not model:
                node = treap.insert_first(chunk)
                model.insert(0, chunk)
            else:
                pos = rng.randrange(len(model))
                node = treap.insert_after(model[pos].node, chunk)
                model.insert(pos + 1, chunk)
            chunk.node = node
        else:
            pos = rng.randrange(len(model))
            treap.delete(model[pos].node)
            model.pop(pos)
    assert [n.payload for n in treap] == model
    treap.check_invariants()
    if model:
        assert treap.total_points == len(model)
