"""The live exposition listener: /metrics across all layers, /healthz flips."""

from __future__ import annotations

import asyncio
import json

from promparse import parse

from repro import DynamicIRS, ExternalIRS, ShardedIRS
from repro.errors import ShardExecutionError
from repro.faults import FaultPlan
from repro.serve import ReproServer, ServeClient

DATA = [float(i) for i in range(4000)]


def run(coro):
    return asyncio.run(coro)


async def http_get(port: int, path: str) -> tuple[str, dict, str]:
    """Issue one GET on the running loop; return (status, headers, body).

    Deliberately raw asyncio: a blocking urllib call would deadlock
    against the single-loop listener under test.
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode("ascii"))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = lines[0].split(" ", 1)[1]
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body.decode("utf-8")


async def request_raw(port: int, payload: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    return raw


# -- the five-layer scrape ---------------------------------------------------


def test_metrics_exposes_every_layer(tmp_path):
    async def main():
        structures = {
            "default": DynamicIRS(DATA, seed=1),
            "sharded": ShardedIRS(DATA, num_shards=4, seed=2),
            "em": ExternalIRS(DATA, block_size=256, pool_capacity=8, seed=3),
        }
        # The plan never fires (empty schedule for the site) but makes the
        # faults family — with its site child — part of the exposition.
        plan = FaultPlan(seed=11, limits={"wal.fsync": 0})
        async with ReproServer(
            structures,
            seed=5,
            window=0.0,
            data_dir=str(tmp_path),
            fsync="always",
            fault_plan=plan,
        ) as server:
            await server.start_metrics()
            client = ServeClient(server)
            for i in range(10):
                await client.sample(100.0, 3900.0, 16, seed=i)
                await client.sample(0.0, 4000.0, 32, structure="sharded")
                await client.sample(0.0, 4000.0, 8, structure="em")
            await client.insert(0.5)
            await client.insert_bulk([1.5, 2.5, 3.5])

            status, headers, body = await http_get(server.metrics_port, "/metrics")
            assert status == "200 OK"
            assert headers["content-type"].startswith("text/plain; version=0.0.4")
            families = parse(body)  # the strict parser validates everything

            # serve layer
            assert families["repro_serve_requests_total"].value(kind="sample") == 30
            assert families["repro_serve_requests_total"].value(kind="update") == 2
            lat = families["repro_serve_request_latency_seconds"]
            assert lat.type == "histogram"
            assert lat.value("repro_serve_request_latency_seconds_count") == 32
            assert families["repro_serve_replies_total"].value(outcome="ok") == 32
            assert families["repro_serve_batches_total"].value() >= 1
            assert "repro_serve_queue_depth" in families
            assert "repro_serve_pressure" in families
            assert families["repro_serve_health"].value() == 0

            # shard layer
            task_lat = families["repro_shard_task_latency_seconds"]
            count = task_lat.value(
                "repro_shard_task_latency_seconds_count", structure="sharded"
            )
            assert count >= 10  # one span per shard task over 10 requests
            scatter = families["repro_shard_scatter_tasks_total"]
            assert scatter.value(structure="sharded") >= 10
            assert families["repro_shard_failovers_total"].value(structure="sharded") == 0
            assert families["repro_shard_count"].value(structure="sharded") == 4
            assert len(families["repro_shard_size"].label_values("shard")) == 4

            # store layer
            assert families["repro_store_wal_appends_total"].value() == 2
            assert families["repro_store_wal_fsyncs_total"].value() >= 2
            assert families["repro_store_wal_bytes_total"].value() > 0
            assert "repro_store_wal_rotations_total" in families
            assert "repro_store_snapshots_total" in families

            # external-memory layer
            hits = families["repro_em_pool_hits_total"].value(structure="em")
            misses = families["repro_em_pool_misses_total"].value(structure="em")
            assert hits + misses > 0
            assert "repro_em_pool_evictions_total" in families
            assert families["repro_em_device_reads_total"].value(structure="em") > 0

            # faults layer
            assert families["repro_faults_fired_total"].value(site="wal.fsync") == 0

    run(main())


def test_metrics_scrape_is_idempotent(tmp_path):
    async def main():
        async with ReproServer(DynamicIRS(DATA, seed=1), seed=5) as server:
            await server.start_metrics()
            client = ServeClient(server)
            await client.sample(0.0, 4000.0, 4)
            _, _, first = await http_get(server.metrics_port, "/metrics")
            _, _, second = await http_get(server.metrics_port, "/metrics")
            # Scraping must not perturb counters (uptime-free exposition).
            assert first == second

    run(main())


def test_http_routes():
    async def main():
        async with ReproServer(DynamicIRS(DATA, seed=1), seed=5) as server:
            await server.start_metrics()
            port = server.metrics_port
            status, _, _ = await http_get(port, "/nope")
            assert status.startswith("404")
            raw = await request_raw(
                port, b"POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            assert b"405" in raw.split(b"\r\n", 1)[0]
            status, _, _ = await http_get(port, "/metrics?x=1")
            assert status == "200 OK"  # query strings ignored

    run(main())


# -- health ------------------------------------------------------------------


def test_healthz_ok():
    async def main():
        async with ReproServer(DynamicIRS(DATA, seed=1), seed=5) as server:
            await server.start_metrics()
            status, headers, body = await http_get(server.metrics_port, "/healthz")
            assert status == "200 OK"
            assert headers["content-type"] == "application/json"
            doc = json.loads(body)
            assert doc["status"] == "ok"
            assert doc["checks"]["pressure"] < 1.0

    run(main())


def test_healthz_degrades_on_wal_fsync_fault(tmp_path):
    async def main():
        plan = FaultPlan(seed=7, rates={"wal.fsync": 1.0})
        async with ReproServer(
            DynamicIRS(DATA, seed=1),
            seed=5,
            window=0.0,
            data_dir=str(tmp_path),
            fsync="always",
            fault_plan=plan,
        ) as server:
            await server.start_metrics()
            client = ServeClient(server)
            # Healthy until the fault actually fires.
            _, _, body = await http_get(server.metrics_port, "/healthz")
            assert json.loads(body)["status"] == "ok"

            resp = await client.request(
                {"op": "insert", "id": 1, "value": 0.5}
            )
            assert resp["ok"] is False
            assert resp["error"]["type"] == "unavailable"

            status, _, body = await http_get(server.metrics_port, "/healthz")
            assert status == "503 Service Unavailable"
            doc = json.loads(body)
            assert doc["status"] == "degraded"
            assert doc["checks"]["wal"] == "append_failures"

            # The fired fault is visible in the exposition too.
            _, _, metrics = await http_get(server.metrics_port, "/metrics")
            families = parse(metrics)
            assert families["repro_faults_fired_total"].value(site="wal.fsync") >= 1
            assert families["repro_serve_wal_failures_total"].value() >= 1
            assert families["repro_serve_health"].value() == 1

    run(main())


def test_healthz_degrades_on_shard_failover():
    async def main():
        sharded = ShardedIRS(DATA, num_shards=4, seed=2)
        async with ReproServer(sharded, seed=5) as server:
            await server.start_metrics()
            _, _, body = await http_get(server.metrics_port, "/healthz")
            assert json.loads(body)["status"] == "ok"

            sharded._failover(ShardExecutionError("worker died"))

            status, _, body = await http_get(server.metrics_port, "/healthz")
            assert status == "503 Service Unavailable"
            doc = json.loads(body)
            assert doc["status"] == "degraded"
            assert "ShardExecutionError" in doc["checks"]["failover"]["default"]

            _, _, metrics = await http_get(server.metrics_port, "/metrics")
            families = parse(metrics)
            assert families["repro_shard_failovers_total"].value(structure="default") == 1

    run(main())


def test_healthz_overloaded_under_memory_pressure():
    async def main():
        async with ReproServer(
            DynamicIRS(DATA, seed=1),
            seed=5,
            memory_budget=1,  # resident bytes dwarf a 1-byte budget
        ) as server:
            await server.start_metrics()
            client = ServeClient(server)
            resp = await client.request(
                {"op": "sample", "id": 1, "lo": 0.0, "hi": 1.0, "t": 1}
            )
            assert resp["ok"] is False
            assert resp["error"]["type"] == "overloaded"
            assert "memory" in resp["error"]["message"]
            assert "retry_after" in resp["error"]

            status, _, body = await http_get(server.metrics_port, "/healthz")
            assert status == "503 Service Unavailable"
            doc = json.loads(body)
            assert doc["status"] == "overloaded"
            assert doc["checks"]["pressure"] >= 1.0

            _, _, metrics = await http_get(server.metrics_port, "/metrics")
            families = parse(metrics)
            assert families["repro_serve_rejected_total"].value() == 1
            assert families["repro_serve_health"].value() == 2

    run(main())
