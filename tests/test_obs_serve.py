"""Serve-layer observability satellites: stats shape, drops, executor stats."""

from __future__ import annotations

import asyncio

from repro import DynamicIRS, ShardedIRS
from repro.serve import ReproServer, ServeClient, ServerStats

DATA = [float(i) for i in range(3000)]


def run(coro):
    return asyncio.run(coro)


# -- snapshot always carries latency_ms (regression) -------------------------


def test_snapshot_has_latency_ms_before_any_reply():
    snap = ServerStats().snapshot()
    assert snap["latency_ms"] == {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}


def test_stats_op_has_latency_ms_on_fresh_server():
    async def main():
        async with ReproServer(DynamicIRS(DATA, seed=1), seed=5) as server:
            client = ServeClient(server)
            # The stats op answers at admission: no reply has ever been
            # measured, yet the key must be present with zeroed quantiles.
            snap = await client.server_stats()
            assert snap["latency_ms"] == {
                "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0,
            }
            await client.sample(0.0, 3000.0, 4)
            snap = await client.server_stats()
            assert set(snap["latency_ms"]) == {"p50", "p90", "p99", "max"}
            assert snap["latency_ms"]["max"] > 0.0
            assert snap["latency_ms"]["p50"] <= snap["latency_ms"]["max"]

    run(main())


# -- dropped replies stamp the drain window ----------------------------------


def test_observe_dropped_counts_and_stamps_drain():
    stats = ServerStats()
    stats.observe_dropped()
    stats.observe_dropped()
    assert stats.dropped_replies == 2
    assert len(stats.drains) == 2  # each drop drained a queue slot
    assert stats.snapshot()["dropped_replies"] == 2
    # The drain-rate window sees the drops: with >= 2 stamps the rate is
    # measurable, where pre-fix it stayed 0.0 and inflated retry_after.
    assert stats.drain_rate() >= 0.0
    stats.observe_reply(True, 0.001)
    assert len(stats.drains) == 3


def test_dropped_reply_not_double_counted():
    stats = ServerStats()
    stats.observe_dropped()
    snap = stats.snapshot()
    assert snap["dropped_replies"] == 1
    assert snap["replies_ok"] == 0 and snap["replies_error"] == 0
    # A drop is not a reply: no latency is recorded anywhere.
    assert not stats.latencies
    assert stats.latency_hist.labels().count == 0


# -- executor stats through the stats op -------------------------------------


def test_stats_op_exposes_sharded_executor():
    async def main():
        structures = {
            "default": DynamicIRS(DATA, seed=1),
            "sharded": ShardedIRS(DATA, num_shards=4, seed=2),
        }
        async with ReproServer(structures, seed=5, window=0.0) as server:
            client = ServeClient(server)
            for _ in range(5):
                await client.sample(0.0, 3000.0, 32, structure="sharded")
            snap = await client.server_stats()
            block = snap["structures"]["sharded"]
            assert block["kind"] == "ShardedIRS"
            assert block["num_shards"] == 4
            assert block["backend"]
            assert block["scatter_tasks"] >= 5
            assert block["failovers"] == 0 and block["timeouts"] == 0
            assert block["last_failover"] is None
            assert len(block["shard_sizes"]) == 4
            assert sum(block["shard_sizes"]) == len(DATA)
            # Plain structures don't get an executor block.
            assert "default" not in snap["structures"]

    run(main())


def test_stats_op_omits_structures_without_executors():
    async def main():
        async with ReproServer(DynamicIRS(DATA, seed=1), seed=5) as server:
            snap = await ServeClient(server).server_stats()
            assert "structures" not in snap

    run(main())


# -- metrics-off mode --------------------------------------------------------


def test_observe_off_keeps_wire_stats():
    async def main():
        async with ReproServer(
            DynamicIRS(DATA, seed=1), seed=5, observe=False
        ) as server:
            client = ServeClient(server)
            await client.sample(0.0, 3000.0, 4)
            snap = await client.server_stats()
            assert snap["replies_ok"] == 1
            assert snap["latency_ms"]["max"] > 0.0  # reservoir still records
            # Only the push histogram is skipped in metrics-off mode.
            assert server.stats.latency_hist.labels().count == 0

    run(main())
