"""Tests for the sample-to-answer estimators (stats.estimators)."""

from __future__ import annotations

import math
import random

import pytest

from repro import StaticIRS
from repro.stats import (
    dkw_epsilon,
    fraction_estimate,
    mean_estimate,
    quantile_bounds,
    quantile_estimate,
    required_sample_size,
    sum_estimate,
)


class TestMeanSum:
    def test_mean_exact_on_constant(self):
        mean, half = mean_estimate([5.0] * 100)
        assert mean == 5.0 and half == 0.0

    def test_single_sample_infinite_ci(self):
        mean, half = mean_estimate([3.0])
        assert mean == 3.0 and math.isinf(half)

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_estimate([])
        with pytest.raises(ValueError):
            mean_estimate([1.0, 2.0], confidence=1.5)

    def test_ci_covers_truth_at_nominal_rate(self):
        """95% CI should contain the true mean ~95% of the time."""
        rng = random.Random(1)
        population = [rng.uniform(0, 10) for _ in range(5000)]
        truth = sum(population) / len(population)
        covered = 0
        trials = 300
        for i in range(trials):
            samples = [population[rng.randrange(5000)] for _ in range(200)]
            mean, half = mean_estimate(samples)
            covered += abs(mean - truth) <= half
        assert covered / trials > 0.88  # generous slack around 0.95

    def test_sum_scales_mean(self):
        mean, half = mean_estimate([2.0, 4.0])
        total, total_half = sum_estimate([2.0, 4.0], population=10)
        assert total == pytest.approx(10 * mean)
        assert total_half == pytest.approx(10 * half)

    def test_ci_shrinks_with_sqrt_t(self):
        rng = random.Random(2)
        small = mean_estimate([rng.random() for _ in range(100)])[1]
        large = mean_estimate([rng.random() for _ in range(10_000)])[1]
        assert large < small / 5  # ~ sqrt(100) = 10x, allow slack


class TestFraction:
    def test_extremes(self):
        center, half = fraction_estimate(0, 100)
        assert center < 0.05
        center, half = fraction_estimate(100, 100)
        assert center > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            fraction_estimate(1, 0)

    def test_half_width_shrinks(self):
        _c1, h1 = fraction_estimate(50, 100)
        _c2, h2 = fraction_estimate(5000, 10_000)
        assert h2 < h1 / 5


class TestQuantiles:
    def test_quantile_estimate(self):
        samples = [float(i) for i in range(100)]
        assert quantile_estimate(samples, 0.0) == 0.0
        assert quantile_estimate(samples, 0.5) == 50.0
        assert quantile_estimate(samples, 1.0) == 99.0

    def test_validation(self):
        with pytest.raises(ValueError):
            quantile_estimate([], 0.5)
        with pytest.raises(ValueError):
            quantile_estimate([1.0], 1.5)

    def test_dkw_epsilon_monotone(self):
        assert dkw_epsilon(10_000) < dkw_epsilon(100)
        assert dkw_epsilon(100, delta=0.01) > dkw_epsilon(100, delta=0.10)
        with pytest.raises(ValueError):
            dkw_epsilon(0)

    def test_required_sample_size_roundtrip(self):
        t = required_sample_size(0.02, 0.05)
        assert dkw_epsilon(t, 0.05) <= 0.02
        assert dkw_epsilon(t - 50, 0.05) > 0.02

    def test_quantile_bounds_bracket_truth(self):
        """DKW bounds from IRS samples must bracket the true quantile."""
        values = sorted(random.Random(3).uniform(0, 100) for _ in range(20_000))
        s = StaticIRS(values, seed=4)
        samples = s.sample(0.0, 100.0, required_sample_size(0.02, 0.01))
        truth = values[len(values) // 2]
        lo, hi = quantile_bounds(samples, 0.5, delta=0.01)
        assert lo <= truth <= hi
        assert hi - lo < 10.0  # the band is actually informative
