"""Tests for the sharded scatter-gather engine (``repro.shard``).

Covers the partition/routing invariants, exact equivalence of sharded vs
unsharded ``count``/``report``, chi-square uniformity of ``sample_bulk``
across shard boundaries, weighted proportionality, update routing with
cross-shard atomicity, the skew-triggered rebalancer, and the rank
machinery behind without-replacement sampling.
"""

from __future__ import annotations

import inspect

import numpy as np
import pytest

from repro import (
    DynamicIRS,
    EmptyRangeError,
    InvalidQueryError,
    KeyNotFoundError,
    ShardedIRS,
    StaticIRS,
    WeightedStaticIRS,
    sample_without_replacement,
)
from repro.shard import run_aligned_cuts
from repro.stats import chi_square_gof, uniformity_test
from repro.workloads import duplicate_heavy, hotspot_points, uniform_points

P_PASS = 1e-4


@pytest.fixture(scope="module")
def data():
    return uniform_points(4000, seed=11)


@pytest.fixture(scope="module")
def sharded(data):
    return ShardedIRS(data, num_shards=4, seed=12)


class TestPartition:
    def test_run_aligned_cuts_never_split_runs(self):
        values = np.asarray(sorted(duplicate_heavy(1000, distinct=7, seed=1)))
        cuts = run_aligned_cuts(values, 5)
        for cut in cuts:
            assert values[cut - 1] < values[cut]

    def test_cut_count_bounded(self):
        values = np.asarray(sorted(uniform_points(100, seed=2)))
        assert len(run_aligned_cuts(values, 4)) == 3
        assert run_aligned_cuts(values, 1) == []
        assert run_aligned_cuts(np.empty(0), 4) == []

    def test_construction_invariants(self, sharded):
        sharded.check_invariants()
        assert sharded.num_shards == 4
        assert len(sharded.bounds) == 3

    def test_values_roundtrip(self, data, sharded):
        assert sharded.values() == sorted(data)
        assert len(sharded) == len(data)

    def test_from_sorted(self, data):
        s = ShardedIRS.from_sorted(sorted(data), num_shards=4, seed=5)
        s.check_invariants()
        assert len(s) == len(data)
        with pytest.raises(ValueError):
            ShardedIRS.from_sorted([3.0, 1.0], num_shards=2)

    def test_duplicate_heavy_builds_fewer_shards(self):
        s = ShardedIRS(duplicate_heavy(2000, distinct=3, seed=3), num_shards=8)
        s.check_invariants()
        assert s.num_shards <= 3

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            ShardedIRS([1.0], num_shards=0)
        with pytest.raises(ValueError):
            ShardedIRS([1.0], shard_kind="nope")
        with pytest.raises(ValueError):
            ShardedIRS([1.0], rebalance_factor=1.0)
        with pytest.raises(ValueError):
            ShardedIRS([1.0, 2.0], weights=[1.0])
        with pytest.raises(InvalidQueryError):
            ShardedIRS([1.0, 2.0], weights=[1.0, 2.0], shard_kind="dynamic")


class TestEquivalence:
    @pytest.mark.parametrize("kind", ["static", "dynamic", "external"])
    def test_count_report_match_flat(self, data, kind):
        s = ShardedIRS(data, num_shards=4, seed=21, shard_kind=kind, block_size=64)
        flat = StaticIRS(data, seed=22)
        ranges = [(0.0, 1.0), (0.3, 0.31), (2.0, 3.0), (-1.0, 0.0)]
        ranges += [(b, b) for b in s.bounds]  # exactly-on-a-cut endpoints
        ranges += [(s.bounds[0] - 1e-9, s.bounds[-1] + 1e-9)]
        for lo, hi in ranges:
            assert s.count(lo, hi) == flat.count(lo, hi), (lo, hi)
            assert s.report(lo, hi) == flat.report(lo, hi), (lo, hi)

    def test_peek_counts_matches_count(self, data, sharded):
        queries = [(0.1, 0.9), (0.5, 0.5), (-2.0, -1.0), (0.0, 1.0)]
        expect = [sharded.count(lo, hi) for lo, hi in queries]
        assert list(sharded.peek_counts(queries)) == expect

    def test_len_weighted_facade(self, data):
        w = [1.0 + (i % 3) for i in range(len(data))]
        s = ShardedIRS(data, num_shards=4, weights=w, seed=23, shard_kind="weighted")
        flat = WeightedStaticIRS(data, w, seed=24)
        assert s.count(0.2, 0.8) == flat.count(0.2, 0.8)
        assert s.range_weight(0.2, 0.8) == pytest.approx(
            flat.total_weight(0.2, 0.8)
        )


class TestSampling:
    def test_bulk_uniform_across_shard_boundaries(self, data, sharded):
        # The range spans all three cuts, so any per-shard bias (wrong
        # multinomial split, wrong boundary ranks) shows up as a boundary
        # discontinuity the chi-square catches.
        lo, hi = 0.1, 0.9
        samples = sharded.sample_bulk(lo, hi, 24_000)
        population = sharded.report(lo, hi)
        _stat, p = uniformity_test(samples.tolist(), population)
        assert p > P_PASS, f"sharded bulk sampling biased: p={p:.2e}"

    def test_bulk_shard_split_is_multinomial_exact(self, data, sharded):
        # Aggregated per-shard hit counts must match in-range populations.
        lo, hi = 0.05, 0.95
        samples = sharded.sample_bulk(lo, hi, 24_000)
        bounds = list(sharded.bounds)
        observed = np.histogram(samples, bins=[lo, *bounds, hi])[0]
        expected = [s.count(lo, hi) for s in sharded.shards]
        _stat, p = chi_square_gof(observed.tolist(), expected)
        assert p > P_PASS

    def test_scalar_sample_uniform(self, data):
        s = ShardedIRS(data, num_shards=4, seed=31)
        lo, hi = 0.2, 0.8
        samples = s.sample(lo, hi, 12_000)
        _stat, p = uniformity_test(samples, s.report(lo, hi))
        assert p > P_PASS

    def test_weighted_bulk_proportional(self):
        values = [float(i) for i in range(400)]
        weights = [1.0 + (i % 5) for i in range(400)]
        s = ShardedIRS(
            values, num_shards=4, weights=weights, seed=32, shard_kind="weighted"
        )
        samples = s.sample_bulk(49.5, 349.5, 30_000)
        in_range = [(v, w) for v, w in zip(values, weights) if 49.5 <= v <= 349.5]
        index = {v: i for i, (v, _w) in enumerate(in_range)}
        observed = [0] * len(in_range)
        for v in samples.tolist():
            observed[index[v]] += 1
        _stat, p = chi_square_gof(observed, [w for _v, w in in_range])
        assert p > P_PASS, f"weighted sharded sampling off-proportion: p={p:.2e}"

    def test_reproducible_under_seed(self, data):
        a = ShardedIRS(data, num_shards=4, seed=77).sample_bulk(0.1, 0.9, 500)
        b = ShardedIRS(data, num_shards=4, seed=77).sample_bulk(0.1, 0.9, 500)
        c = ShardedIRS(data, num_shards=4, seed=78).sample_bulk(0.1, 0.9, 500)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_scalar_matches_bulk_distribution_edges(self, sharded):
        assert sharded.sample(0.1, 0.9, 0) == []
        assert len(sharded.sample_bulk(0.1, 0.9, 0)) == 0
        with pytest.raises(EmptyRangeError):
            sharded.sample(2.0, 3.0, 1)
        with pytest.raises(EmptyRangeError):
            sharded.sample_bulk(2.0, 3.0, 1)
        with pytest.raises(InvalidQueryError):
            sharded.sample(0.9, 0.1, 1)
        with pytest.raises(InvalidQueryError):
            sharded.sample_bulk(0.1, 0.9, -1)

    def test_weighted_zero_mass_range_raises(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        weights = [1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0]
        s = ShardedIRS(
            values, num_shards=2, weights=weights, seed=1, shard_kind="weighted"
        )
        with pytest.raises(EmptyRangeError):
            s.sample_bulk(2.5, 6.5, 4)

    def test_sample_bulk_many_alignment(self, sharded):
        queries = [(0.1, 0.4, 100), (0.5, 0.9, 50), (0.2, 0.3, 0)]
        results = sharded.sample_bulk_many(queries)
        assert [len(r) for r in results] == [100, 50, 0]
        for (lo, hi, _t), r in zip(queries, results):
            assert all(lo <= v <= hi for v in r.tolist())


class TestUpdates:
    def test_bulk_matches_scalar_replay(self, data):
        batch = uniform_points(600, seed=41)
        dels = sorted(data)[::9][:300]
        s_bulk = ShardedIRS(data, num_shards=4, seed=42)
        s_bulk.insert_bulk(batch)
        s_bulk.delete_bulk(dels)
        s_bulk.check_invariants()
        s_scalar = ShardedIRS(data, num_shards=4, seed=42)
        for v in batch:
            s_scalar.insert(v)
        for v in dels:
            s_scalar.delete(v)
        s_scalar.check_invariants()
        ref = DynamicIRS(data, seed=43)
        ref.insert_bulk(batch)
        ref.delete_bulk(dels)
        assert s_bulk.values() == s_scalar.values() == ref.values()

    def test_updates_route_across_bounds(self, data):
        s = ShardedIRS(data, num_shards=4, seed=44)
        for b in s.bounds:
            s.insert(b)  # exactly-on-a-cut values must route consistently
        for b in s.bounds:
            s.delete(b)
        s.check_invariants()
        assert len(s) == len(data)

    def test_delete_missing_raises(self):
        s = ShardedIRS([1.0, 2.0, 3.0, 4.0], num_shards=2, seed=1)
        with pytest.raises(KeyNotFoundError):
            s.delete(9.0)

    def test_delete_bulk_atomic_across_shards(self, data):
        s = ShardedIRS(data, num_shards=4, seed=45)
        before = s.values()
        present_low = min(before)  # lives in shard 0
        with pytest.raises(KeyNotFoundError):
            s.delete_bulk([present_low, 99.0])  # 99.0 routes to the last shard
        s.check_invariants()
        assert s.values() == before

    def test_static_shards_reject_updates(self, data):
        s = ShardedIRS(data, num_shards=4, seed=46, shard_kind="static")
        with pytest.raises(TypeError):
            s.insert(0.5)
        with pytest.raises(TypeError):
            s.delete_bulk([0.5])

    def test_weighted_facade_updates(self):
        values = uniform_points(500, seed=47)
        weights = [1.0] * 500
        s = ShardedIRS(
            values, num_shards=3, weights=weights, seed=48,
            shard_kind="weighted-dynamic",
        )
        s.insert(0.5, 3.0)
        assert len(s) == 501
        removed = s.delete(0.5)
        assert removed == 3.0 or removed is None
        s.insert_bulk([0.1, 0.6, 0.9], [2.0, 2.0, 2.0])
        s.delete_bulk([0.1, 0.6, 0.9])
        s.check_invariants()
        assert len(s) == 500

    def test_unweighted_facade_signature_has_no_weights(self, sharded):
        # BatchQueryRunner's upfront weighted-insert check inspects the
        # bulk signature; a plain facade must not advertise weights.
        assert "weights" not in inspect.signature(sharded.insert_bulk).parameters
        weighted = ShardedIRS(
            [1.0, 2.0], num_shards=1, weights=[1.0, 1.0],
            shard_kind="weighted-dynamic", seed=1,
        )
        assert "weights" in inspect.signature(weighted.insert_bulk).parameters


class TestRebalance:
    def test_skewed_inserts_trigger_rebalance(self):
        base = uniform_points(2000, seed=51)
        s = ShardedIRS(base, num_shards=4, seed=52)
        hot = hotspot_points(8000, hot_fraction=1.0, seed=53)
        s.insert_bulk(hot)
        s.check_invariants()
        assert s.stats.extra.get("rebalances", 0) >= 1
        mean = len(s) / s.num_shards
        assert max(len(sh) for sh in s.shards) <= 2.0 * mean + 1
        assert len(s) == 10_000

    def test_sampling_stays_uniform_after_rebalance(self):
        base = uniform_points(1500, seed=54)
        s = ShardedIRS(base, num_shards=4, seed=55)
        s.insert_bulk(hotspot_points(6000, hot_fraction=1.0, seed=56))
        assert s.stats.extra.get("rebalances", 0) >= 1
        lo, hi = 0.4, 0.5  # straddles the hot band
        samples = s.sample_bulk(lo, hi, 20_000)
        _stat, p = uniformity_test(samples.tolist(), s.report(lo, hi))
        assert p > P_PASS

    def test_weighted_rebalance_preserves_masses(self):
        base = uniform_points(1000, seed=57)
        s = ShardedIRS(
            base, num_shards=4, weights=[1.0] * 1000, seed=58,
            shard_kind="weighted-dynamic",
        )
        hot = hotspot_points(4000, hot_fraction=1.0, seed=59)
        s.insert_bulk(hot, [2.0] * 4000)
        s.check_invariants()
        assert s.stats.extra.get("rebalances", 0) >= 1
        assert s.range_weight(-1.0, 2.0) == pytest.approx(1000 + 8000)
        samples = s.sample_bulk(0.0, 1.0, 5000)
        frac_hot = sum(1 for v in samples.tolist() if 0.45 <= v <= 0.47) / 5000
        assert frac_hot == pytest.approx(8000 / 9000, abs=0.03)

    def test_rebalance_survives_emptied_shard(self):
        # Deleting everything a shard held must not break the next
        # rebalance (bounds are re-derived from shard minima, and an
        # emptied shard has none — its interval folds into a neighbor).
        data = [5.0] * 500 + [6.0] * 10 + [7.0] * 500
        s = ShardedIRS(data, num_shards=4, seed=66)
        s.delete_bulk([6.0] * 10)
        s.insert_bulk([5.0] * 700)
        s.check_invariants()
        assert len(s) == 1700
        assert s.count(4.0, 8.0) == 1700
        assert s.count(5.5, 6.5) == 0

    def test_unsplittable_shard_does_not_thrash(self):
        # One giant run of equal values cannot be split (cuts never break
        # runs); the rebalance trigger must damp itself instead of firing
        # a full O(n) rebalance on every subsequent update.
        data = [5.0] * 5100 + uniform_points(1900, lo=6.0, hi=8.0, seed=67)
        s = ShardedIRS(data, num_shards=4, seed=68)
        for i in range(50):
            s.insert_bulk([6.5 + i * 1e-6] * 4)
        s.check_invariants()
        assert s.stats.extra.get("rebalances", 0) <= 3

    def test_hotspot_points_shape(self):
        pts = hotspot_points(1000, hot_lo=0.2, hot_hi=0.25, hot_fraction=0.8, seed=1)
        assert len(pts) == 1000
        frac = sum(1 for v in pts if 0.2 <= v <= 0.25) / 1000
        assert 0.7 < frac < 0.9
        assert pts == hotspot_points(
            1000, hot_lo=0.2, hot_hi=0.25, hot_fraction=0.8, seed=1
        )
        with pytest.raises(ValueError):
            hotspot_points(10, hot_fraction=1.5)


class TestRankMachinery:
    def test_select_in_range_matches_report(self, data, sharded):
        lo, hi = 0.2, 0.8
        pool = sharded.report(lo, hi)
        ranks = [0, len(pool) - 1, len(pool) // 2, 7, 7]
        got = sharded.select_in_range(lo, hi, ranks)
        assert got == [pool[r] for r in ranks]
        with pytest.raises(InvalidQueryError):
            sharded.select_in_range(lo, hi, [len(pool)])

    def test_without_replacement_with_duplicates(self):
        dup = duplicate_heavy(1200, distinct=20, seed=61)
        s = ShardedIRS(dup, num_shards=4, seed=62)
        lo, hi = 0.0, 1.0
        total = s.count(lo, hi)
        got = s.sample_without_replacement(lo, hi, total)
        assert sorted(got) == sorted(s.report(lo, hi))

    def test_module_dispatch_uses_rank_path(self):
        # The generic rejection path would raise on duplicate values; the
        # capability dispatch must route ShardedIRS (and DynamicIRS) to
        # Floyd over ranks instead.
        dup = duplicate_heavy(600, distinct=10, seed=63)
        s = ShardedIRS(dup, num_shards=3, seed=64)
        got = sample_without_replacement(s, 0.0, 1.0, 50, assume_distinct=True)
        assert len(got) == 50
        d = DynamicIRS(dup, seed=65)
        got_d = sample_without_replacement(d, 0.0, 1.0, 50, assume_distinct=True)
        assert len(got_d) == 50

    def test_too_many_distinct_requested(self, sharded):
        with pytest.raises(InvalidQueryError):
            sharded.sample_without_replacement(0.45, 0.46, 10_000)


class TestMassProbes:
    def test_peek_weights_matches_range_weight(self):
        values = [float(i % 31) for i in range(600)]
        weights = [1.0 + (i % 5) for i in range(600)]
        queries = [(0.0, 10.0), (5.0, 5.0), (-2.0, 0.5), (25.0, 99.0)]
        for kind in ("weighted", "weighted-dynamic"):
            with ShardedIRS(
                values, num_shards=4, weights=weights, seed=7, shard_kind=kind
            ) as s:
                masses = s.peek_weights(queries)
                for (lo, hi), m in zip(queries, masses):
                    assert float(m) == pytest.approx(s.range_weight(lo, hi), rel=1e-12)

    def test_peek_weights_requires_weighted_shards(self):
        with ShardedIRS([1.0, 2.0], num_shards=2, seed=8) as s:
            with pytest.raises(InvalidQueryError):
                s.peek_weights([(0.0, 1.0)])
