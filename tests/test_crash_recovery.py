"""Crash injection: kill -9 a durable ``repro serve`` and verify recovery.

The harness starts the real CLI server (``python -m repro serve --data-dir``)
as a subprocess, drives a write workload over its TCP socket, SIGKILLs it
mid-stream, and then checks the recovery contract:

* the recovered state equals the initial data plus a *prefix* of the sent
  update stream, and that prefix covers every acknowledged update (an op
  the client saw succeed is never lost);
* a client-seeded sample reply from the recovered server is byte-identical
  to the reply of an uninterrupted server holding the same state.

The deterministic variant runs in tier 1; the randomized multi-round
variant is marked ``slow`` (run with ``pytest -m slow``).
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import socket
import subprocess
import sys

import pytest

from repro import DynamicIRS
from repro.serve import ReproServer

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
INITIAL = [float(i) for i in range(120)]


def serve_command(data_file, data_dir, fsync):
    return [
        sys.executable, "-m", "repro", "serve",
        "--data", data_file, "--structure", "dynamic", "--seed", "7",
        "--host", "127.0.0.1", "--port", "0",
        "--data-dir", data_dir, "--fsync", fsync,
        "--window-ms", "1", "--snapshot-ops", "1000000",
    ]


def start_server(data_file, data_dir, fsync="batch"):
    """Launch the CLI server; return (process, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.Popen(
        serve_command(data_file, data_dir, fsync),
        cwd=REPO, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    line = proc.stdout.readline()
    assert "serving on" in line, f"server failed to start: {line!r}"
    return proc, int(line.rsplit(":", 1)[1])


def drain_responses(sock, want, deadline=20.0):
    """Read newline-JSON responses until ``want`` arrive or the socket ends."""
    sock.settimeout(deadline)
    buf = b""
    out = []
    try:
        while len(out) < want:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
            while b"\n" in buf and len(out) < want:
                head, buf = buf.split(b"\n", 1)
                out.append(json.loads(head))
    except (TimeoutError, OSError):  # killed mid-read is expected
        pass
    return out


def apply_ops(values, ops):
    """Replay (kind, value) ops over a sorted list, returning a new list."""
    out = list(values)
    for kind, value in ops:
        if kind == "insert":
            out.append(value)
        elif value in out:
            out.remove(value)
    return sorted(out)


def verify_recovery(data_dir, sent_ops, acked):
    """Open the data dir in process; check the prefix property and replies."""
    seeded_req = json.dumps(
        {"id": 0, "op": "sample", "lo": -1e9, "hi": 1e9, "t": 16, "seed": 321}
    ).encode()

    async def recover_and_sample():
        async with ReproServer(
            DynamicIRS(INITIAL, seed=7), seed=7, data_dir=data_dir
        ) as server:
            state = sorted(server._runner.structures["default"].export_sorted())
            reply = await server.submit(seeded_req)
            return state, reply

    async def uninterrupted_sample(state):
        async with ReproServer(DynamicIRS(state, seed=7), seed=7) as server:
            return await server.submit(seeded_req)

    state, reply = asyncio.run(recover_and_sample())
    # The recovered state must be the initial data plus some prefix of the
    # sent stream -- and that prefix must include every acknowledged op.
    candidates = {}
    rolling = list(INITIAL)
    candidates[tuple(sorted(rolling))] = 0
    for i, op in enumerate(sent_ops):
        rolling = apply_ops(rolling, [op])
        # Overwrite on repeats: when two prefixes yield the same state the
        # longer one is the safe answer for the acked-coverage check.
        candidates[tuple(rolling)] = i + 1
    assert tuple(state) in candidates, "recovered state is not a sent-prefix"
    prefix_len = candidates[tuple(state)]
    assert prefix_len >= acked, (
        f"lost acknowledged updates: prefix {prefix_len} < acked {acked}"
    )
    reference = asyncio.run(uninterrupted_sample(state))
    assert json.dumps(reply, sort_keys=True) == json.dumps(reference, sort_keys=True)
    return prefix_len


def run_crash_round(tmp_path, tag, ops, ack_target, fsync):
    """One start -> workload -> kill -9 -> verify cycle; return prefix length."""
    data_file = tmp_path / f"points-{tag}.txt"
    data_file.write_text("\n".join(str(v) for v in INITIAL))
    data_dir = str(tmp_path / f"state-{tag}")
    proc, port = start_server(str(data_file), data_dir, fsync)
    try:
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            payload = b"".join(
                json.dumps(
                    {"id": i, "op": kind, "value": value}
                ).encode() + b"\n"
                for i, (kind, value) in enumerate(ops)
            )
            sock.sendall(payload)
            replies = drain_responses(sock, want=ack_target)
            acked = sum(1 for r in replies if r.get("ok"))
            os.kill(proc.pid, signal.SIGKILL)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=20)
    return verify_recovery(data_dir, ops, acked)


def test_kill9_mid_workload_recovers_acked_prefix(tmp_path):
    ops = [("insert", 1000.0 + i) for i in range(240)]
    run_crash_round(tmp_path, "fast", ops, ack_target=60, fsync="batch")


def test_restarted_cli_server_serves_recovered_state(tmp_path):
    data_file = tmp_path / "points.txt"
    data_file.write_text("\n".join(str(v) for v in INITIAL))
    data_dir = str(tmp_path / "state")
    ops = [("insert", 2000.0 + i) for i in range(40)]

    proc, port = start_server(str(data_file), data_dir)
    try:
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            for i, (kind, value) in enumerate(ops):
                sock.sendall(
                    json.dumps({"id": i, "op": kind, "value": value}).encode() + b"\n"
                )
            replies = drain_responses(sock, want=len(ops))
            assert sum(1 for r in replies if r.get("ok")) == len(ops)
            os.kill(proc.pid, signal.SIGKILL)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=20)

    # A second CLI process over the same --data-dir recovers and serves.
    proc, port = start_server(str(data_file), data_dir)
    try:
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            sock.sendall(
                json.dumps(
                    {"id": 0, "op": "count", "lo": -1e9, "hi": 1e9}
                ).encode() + b"\n"
            )
            (reply,) = drain_responses(sock, want=1)
        assert reply["ok"] and reply["result"] == len(INITIAL) + len(ops)
    finally:
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=20)


@pytest.mark.slow
def test_kill9_randomized_rounds(tmp_path):
    rng = random.Random(20140807)
    for round_no in range(3):
        live = list(INITIAL)
        ops = []
        for i in range(180):
            if live and rng.random() < 0.3:
                value = live.pop(rng.randrange(len(live)))
                ops.append(("delete", value))
            else:
                value = 5000.0 + round_no * 1000 + i
                live.append(value)
                ops.append(("insert", value))
        prefix = run_crash_round(
            tmp_path,
            f"rand{round_no}",
            ops,
            ack_target=rng.randrange(20, 160),
            fsync=rng.choice(["always", "batch"]),
        )
        assert 0 <= prefix <= len(ops)
