"""Tests for StaticIRS (result R1): the ground-truth structure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EmptyRangeError, InvalidQueryError, StaticIRS
from repro.stats import ks_uniform_test, uniformity_test


class TestQueries:
    def test_count_and_report_match_bruteforce(self, uniform_data):
        s = StaticIRS(uniform_data, seed=1)
        for lo, hi in [(0.1, 0.2), (0.0, 1.0), (0.5, 0.5), (0.95, 2.0)]:
            expected = sorted(v for v in uniform_data if lo <= v <= hi)
            assert s.count(lo, hi) == len(expected)
            assert s.report(lo, hi) == expected

    def test_samples_fall_inside_range(self, uniform_data):
        s = StaticIRS(uniform_data, seed=2)
        for value in s.sample(0.3, 0.6, 500):
            assert 0.3 <= value <= 0.6

    def test_t_zero_returns_empty(self, uniform_data):
        s = StaticIRS(uniform_data, seed=3)
        assert s.sample(0.3, 0.6, 0) == []
        assert s.sample(5.0, 6.0, 0) == []  # even on an empty range

    def test_empty_range_raises(self, uniform_data):
        s = StaticIRS(uniform_data, seed=4)
        with pytest.raises(EmptyRangeError):
            s.sample(5.0, 6.0, 1)

    def test_invalid_queries_raise(self, uniform_data):
        s = StaticIRS(uniform_data, seed=5)
        with pytest.raises(InvalidQueryError):
            s.sample(0.6, 0.3, 1)
        with pytest.raises(InvalidQueryError):
            s.sample(0.3, 0.6, -1)
        with pytest.raises(InvalidQueryError):
            s.sample(float("nan"), 0.6, 1)
        with pytest.raises(InvalidQueryError):
            s.sample(0.3, 0.6, 1.5)  # type: ignore[arg-type]

    def test_empty_structure(self):
        s = StaticIRS([], seed=6)
        assert len(s) == 0
        assert s.count(0.0, 1.0) == 0
        with pytest.raises(EmptyRangeError):
            s.sample(0.0, 1.0, 1)

    def test_single_point(self):
        s = StaticIRS([3.5], seed=7)
        assert s.sample(3.5, 3.5, 4) == [3.5] * 4
        assert s.count(3.0, 4.0) == 1

    def test_closed_interval_endpoints_included(self):
        s = StaticIRS([1.0, 2.0, 3.0], seed=8)
        assert s.count(1.0, 3.0) == 3
        assert s.count(1.0 + 1e-12, 3.0 - 1e-12) == 1


class TestDistribution:
    def test_uniformity_continuous(self, uniform_data):
        s = StaticIRS(uniform_data, seed=9)
        samples = s.sample(0.2, 0.8, 4000)
        in_range = sorted(v for v in uniform_data if 0.2 <= v <= 0.8)
        # KS against the empirical step CDF is awkward; instead test ranks.
        _stat, p = ks_uniform_test(
            [in_range.index(v) + 0.5 for v in samples[:800]], 0, len(in_range)
        )
        assert p > 1e-4

    def test_uniformity_over_duplicates(self, duplicated_data):
        s = StaticIRS(duplicated_data, seed=10)
        lo, hi = 0.0, 1.0
        samples = s.sample(lo, hi, 6000)
        _stat, p = uniformity_test(samples, duplicated_data)
        assert p > 1e-4

    def test_sample_ranks_agree_with_values(self, uniform_data):
        s = StaticIRS(uniform_data, seed=11)
        a, b = s.rank_range(0.4, 0.7)
        ranks = s.sample_ranks(0.4, 0.7, 200)
        assert all(a <= r < b for r in ranks)
        assert [s.value_at_rank(r) for r in ranks] == [
            s.values[r] for r in ranks
        ]

    def test_sample_bulk_matches_semantics(self, uniform_data):
        s = StaticIRS(uniform_data, seed=12)
        arr = s.sample_bulk(0.2, 0.4, 1000)
        assert len(arr) == 1000
        assert ((arr >= 0.2) & (arr <= 0.4)).all()

    def test_sample_bulk_reuses_storage_plane(self, uniform_data):
        # Regression: the seed path once re-materialized an O(n) NumPy copy
        # per call.  Storage is now a single array plane; the export hook
        # must hand back that plane itself, never a fresh copy.
        s = StaticIRS(uniform_data, seed=12)
        plane = s._data
        s.sample_bulk(0.2, 0.4, 10)
        assert s._export_array() is plane
        s.sample_bulk(0.5, 0.9, 10)
        assert s._export_array() is plane and s.export_sorted() is plane

    def test_sample_bulk_is_fresh_per_call(self, uniform_data):
        s = StaticIRS(uniform_data, seed=12)
        a = s.sample_bulk(0.1, 0.9, 200)
        b = s.sample_bulk(0.1, 0.9, 200)
        assert not (a == b).all()

    def test_sample_bulk_reproducible_with_seed(self, uniform_data):
        a = StaticIRS(uniform_data, seed=13)
        b = StaticIRS(uniform_data, seed=13)
        assert (a.sample_bulk(0.1, 0.9, 50) == b.sample_bulk(0.1, 0.9, 50)).all()

    def test_reproducible_with_seed(self, uniform_data):
        a = StaticIRS(uniform_data, seed=13)
        b = StaticIRS(uniform_data, seed=13)
        assert a.sample(0.1, 0.9, 50) == b.sample(0.1, 0.9, 50)


@given(
    data=st.lists(st.integers(-50, 50), min_size=0, max_size=80),
    lo=st.integers(-60, 60),
    width=st.integers(0, 60),
    t=st.integers(0, 20),
)
@settings(max_examples=150, deadline=None)
def test_sampling_is_consistent_with_bruteforce(data, lo, width, t):
    """Property: samples come from exactly the brute-force in-range set."""
    hi = lo + width
    s = StaticIRS([float(v) for v in data], seed=99)
    expected = {float(v) for v in data if lo <= v <= hi}
    assert s.count(lo, hi) == sum(1 for v in data if lo <= v <= hi)
    if t == 0:
        assert s.sample(lo, hi, t) == []
    elif not expected:
        with pytest.raises(EmptyRangeError):
            s.sample(lo, hi, t)
    else:
        assert set(s.sample(lo, hi, t)) <= expected
