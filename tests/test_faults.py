"""The deterministic fault-injection layer: plan, wrappers, degradation."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro import DynamicIRS, ShardedIRS
from repro.em.device import BlockDevice
from repro.errors import (
    InjectedFaultError,
    ShardTimeoutError,
    StorageError,
    WorkerDiedError,
)
from repro.faults import FaultPlan, FaultyBackend, FaultyDevice, FaultyFile
from repro.serve import ReproServer, ServeClient
from repro.shard.executors import SerialBackend, ThreadBackend
from repro.store import WriteAheadLog

DATA = [float(i) for i in range(120)]


def run(coro):
    return asyncio.run(coro)


# -- the fault plan -----------------------------------------------------------


def test_plan_is_deterministic_per_seed():
    def decisions(seed):
        plan = FaultPlan(seed, rates={"a.x": 0.5, "b.y": 0.3})
        return [(plan.should("a.x"), plan.should("b.y")) for _ in range(64)]

    assert decisions(7) == decisions(7)
    assert decisions(7) != decisions(8)


def test_plan_sites_are_independent():
    # Interleaving extra visits to one site must not shift another site's
    # schedule: each site keys its draws by its own visit counter.
    lone = FaultPlan(3, rates={"a.x": 0.5})
    mixed = FaultPlan(3, rates={"a.x": 0.5, "b.y": 0.5})
    lone_hits = [lone.should("a.x") for _ in range(32)]
    mixed_hits = []
    for _ in range(32):
        mixed.should("b.y")
        mixed_hits.append(mixed.should("a.x"))
        mixed.should("b.y")
    assert lone_hits == mixed_hits


def test_plan_at_limits_history_and_replay():
    plan = FaultPlan(1, rates={"r.s": 1.0}, at={"x.y": {0, 2}}, limits={"r.s": 2})
    assert [plan.should("x.y") for i in range(4)] == [True, False, True, False]
    # rate 1.0 would fire every visit; the limit caps it at two.
    assert [plan.should("r.s") for i in range(5)] == [True, True, False, False, False]
    assert plan.fired == {"x.y": 2, "r.s": 2}
    assert plan.history == [("x.y", 0), ("x.y", 2), ("r.s", 0), ("r.s", 1)]
    fresh = plan.replay()
    assert fresh.fired == {} and fresh.history == []
    assert [fresh.should("x.y") for i in range(4)] == [True, False, True, False]


def test_plan_split_point_is_strict_nonempty_prefix():
    plan = FaultPlan(5)
    assert plan.split_point("s", 0) == 0
    assert plan.split_point("s", 1) == 0
    for n in (2, 3, 10, 1000):
        for _ in range(20):
            keep = plan.split_point("s", n)
            assert 1 <= keep < n


def test_plan_validates_rates():
    with pytest.raises(ValueError):
        FaultPlan(0, rates={"a": 1.5})


# -- the storage seam ---------------------------------------------------------


def test_faulty_device_injects_read_write_and_torn():
    # The EIO write raises before the torn check runs, so the torn site's
    # visit 0 is the *second* write call.
    plan = FaultPlan(
        0, at={"device.read": {1}, "device.write": {0}, "device.torn": {0}}
    )
    device = FaultyDevice(BlockDevice(8), plan)
    assert device.block_size == 8
    bid = device.allocate()
    with pytest.raises(InjectedFaultError):
        device.write(bid, [1.0, 2.0, 3.0, 4.0])
    # EIO write: nothing landed.
    assert device.inner.read(bid) == []
    with pytest.raises(InjectedFaultError):
        device.write(bid, [1.0, 2.0, 3.0, 4.0])
    torn = device.inner.read(bid)
    # Torn write: a strict non-empty prefix landed.
    assert 1 <= len(torn) < 4 and torn == [1.0, 2.0, 3.0, 4.0][: len(torn)]
    assert device.read(bid) == torn  # visit 0: no read fault
    with pytest.raises(InjectedFaultError):
        device.read(bid)  # visit 1: injected EIO
    assert isinstance(InjectedFaultError("x"), StorageError)
    device.free(bid)
    assert device.blocks_in_use == 0
    device.close()


def test_faulty_file_torn_write_kills_the_handle(tmp_path):
    path = tmp_path / "f.bin"
    plan = FaultPlan(2, at={"wal.torn": {1}})
    fh = FaultyFile(open(path, "ab"), plan)
    fh.write(b"hello-hello-hello")
    fh.flush()
    with pytest.raises(InjectedFaultError):
        fh.write(b"world-world-world")
    persisted = path.read_bytes()
    assert len(persisted) > 17  # the tear landed a non-empty prefix
    assert persisted.startswith(b"hello-hello-hello")
    # The handle models a crashed process: every later verb fails...
    for verb in (fh.flush, fh.tell, lambda: fh.truncate(0), lambda: fh.write(b"x")):
        with pytest.raises(InjectedFaultError):
            verb()
    # ...except close, which the survivor may still call.
    fh.close()
    assert fh.closed


def test_wal_torn_append_breaks_log_and_recovers_on_reopen(tmp_path):
    plan = FaultPlan(4, at={"wal.torn": {2}})
    wal = WriteAheadLog(
        tmp_path / "wal", file_wrapper=lambda fh: FaultyFile(fh, plan)
    )
    assert wal.append([("insert", 1.0)]) == 1
    assert wal.append([("insert", 2.0)]) == 2
    with pytest.raises(InjectedFaultError):
        wal.append([("insert", 3.0)])
    # The tear killed the handle, so the rollback could not erase the
    # partial frame: the log is broken and refuses to continue.
    assert wal.broken
    with pytest.raises(StorageError):
        wal.append([("insert", 4.0)])
    wal.close()
    # Restart: the open-time scan finds the torn tail and truncates it.
    with WriteAheadLog(tmp_path / "wal") as fresh:
        assert fresh.broken is False
        assert fresh.torn_tail is not None
        assert fresh.last_seq == 2
        assert [r.seq for r in fresh.replay()] == [1, 2]
        assert fresh.append([("insert", 3.0)]) == 3


def test_wal_fsync_fault_rolls_back_atomically(tmp_path):
    plan = FaultPlan(9, at={"wal.fsync": {1}})
    wal = WriteAheadLog(
        tmp_path / "wal",
        fsync="always",
        file_wrapper=lambda fh: FaultyFile(fh, plan),
    )
    assert wal.append([("insert", 1.0)]) == 1
    with pytest.raises(InjectedFaultError):
        wal.append([("insert", 2.0)])
    # The failed append rolled its frame back: the log is intact, not
    # broken, and the retry lands the same sequence number.
    assert wal.broken is False
    assert wal.last_seq == 1
    assert wal.append([("insert", 2.5)]) == 2
    wal.close()
    with WriteAheadLog(tmp_path / "wal") as fresh:
        assert fresh.torn_tail is None
        records = list(fresh.replay())
        assert [r.seq for r in records] == [1, 2]
        assert [op.value for r in records for op in r.ops] == [1.0, 2.5]


def test_wal_silent_corruption_caught_by_checksum(tmp_path):
    from repro.errors import CorruptRecordError

    plan = FaultPlan(6, at={"wal.corrupt": {0}})
    # segment_bytes=1: every append rotates, so the corrupted first record
    # sits in a non-tail segment where the scan must hard-fail (a torn
    # *tail* is survivable; damage before it is not).
    wal = WriteAheadLog(
        tmp_path / "wal",
        segment_bytes=1,
        file_wrapper=lambda fh: FaultyFile(fh, plan),
    )
    wal.append([("insert", 1.0)])
    wal.append([("insert", 2.0)])
    wal.close()
    with pytest.raises(CorruptRecordError):
        WriteAheadLog(tmp_path / "wal")


# -- the shard seam -----------------------------------------------------------


def serial_sharded(seed=11, **kwargs):
    return ShardedIRS(DATA, num_shards=3, seed=seed, **kwargs)


def test_backend_failover_is_byte_identical():
    plan = FaultPlan(3, at={"shard.die": {0}})
    faulty = serial_sharded(backend=FaultyBackend(SerialBackend(), plan))
    clean = serial_sharded(backend="serial")
    with pytest.raises(WorkerDiedError):
        faulty.sample_bulk(5.0, 110.0, 16, seed=42)
    # The fault triggered failover: the wrapper is gone, serial is in.
    assert faulty.backend_name == "serial"
    assert "WorkerDiedError" in faulty.last_failover
    assert faulty.stats.extra["failovers"] == 1
    # Seed-pure tasks: the failed-over scatter returns exactly what the
    # healthy backend would have.
    assert list(faulty.sample_bulk(5.0, 110.0, 16, seed=42)) == list(
        clean.sample_bulk(5.0, 110.0, 16, seed=42)
    )


def test_backend_stall_leaves_partial_then_fails_over():
    plan = FaultPlan(8, at={"shard.stall": {0}})
    faulty = serial_sharded(backend=FaultyBackend(SerialBackend(), plan))
    clean = serial_sharded(backend="serial")
    with pytest.raises(ShardTimeoutError):
        faulty.sample_bulk(0.0, 119.0, 32, seed=7)
    assert faulty.backend_name == "serial"
    assert list(faulty.sample_bulk(0.0, 119.0, 32, seed=7)) == list(
        clean.sample_bulk(0.0, 119.0, 32, seed=7)
    )


def test_thread_backend_timeout_raises_typed_error():
    backend = ThreadBackend(max_workers=2)
    try:
        done = []

        def slow(task):
            time.sleep(0.5)
            done.append(task)

        with pytest.raises(ShardTimeoutError):
            backend.run(slow, [1, 2, 3, 4], 0.05)
        # And without a timeout the same backend still works.
        backend.run(done.append, [9, 9])
    finally:
        backend.close()


def test_sharded_task_timeout_validation_and_passthrough():
    with pytest.raises(ValueError):
        ShardedIRS(DATA, num_shards=2, task_timeout=0.0)
    # A generous timeout on a healthy threads backend changes nothing.
    timed = ShardedIRS(DATA, num_shards=3, seed=11, backend="threads",
                       task_timeout=30.0)
    plain = ShardedIRS(DATA, num_shards=3, seed=11, backend="serial")
    try:
        assert list(timed.sample_bulk(1.0, 100.0, 24, seed=5)) == list(
            plain.sample_bulk(1.0, 100.0, 24, seed=5)
        )
    finally:
        timed.close()


def test_server_absorbs_shard_fault_via_capture_and_failover():
    # Inside a coalesced batch the first scatter fault is captured, the
    # facade fails over, and the per-op replay answers from the serial
    # backend — the client sees a correct reply, not an error.
    plan = FaultPlan(13, at={"shard.die": {0}})

    async def main(structure):
        async with ReproServer(structure, seed=5) as server:
            return await ServeClient(server).sample(5.0, 110.0, 12, seed=77)

    faulty = run(main(serial_sharded(backend=FaultyBackend(SerialBackend(), plan))))
    clean = run(main(serial_sharded(backend="serial")))
    assert faulty == clean


# -- server-side degradation --------------------------------------------------


def test_overloaded_refusal_carries_retry_after():
    async def main():
        async with ReproServer(
            DynamicIRS(DATA, seed=1), seed=5, max_pending=1, window=0.05
        ) as server:
            futures = [
                server.submit({"op": "count", "lo": 0.0, "hi": 1.0, "id": i})
                for i in range(40)
            ]
            replies = await asyncio.gather(*futures)
        refused = [r for r in replies if not r["ok"]]
        assert refused, "expected at least one overload refusal"
        for reply in refused:
            assert reply["error"]["type"] == "overloaded"
            assert 0.005 <= reply["error"]["retry_after"] <= 5.0

    run(main())


def test_wal_failure_refuses_updates_keeps_reads(tmp_path):
    async def main():
        async with ReproServer(
            DynamicIRS(DATA, seed=1), seed=5, data_dir=str(tmp_path / "srv")
        ) as server:
            client = ServeClient(server)
            await client.insert(500.5)

            def explode(ops, rids=None):
                raise StorageError("injected: disk full")

            server.store.log_batch = explode
            update, read = await asyncio.gather(
                server.submit({"op": "insert", "value": 501.5, "id": 1}),
                server.submit({"op": "count", "lo": 0.0, "hi": 1000.0, "id": 2}),
            )
            # The unlogged update was refused retryably; the read executed.
            assert update["ok"] is False
            assert update["error"]["type"] == "unavailable"
            assert read["ok"] is True and read["result"] == len(DATA) + 1
            assert server.stats.wal_failures >= 1
            # 501.5 was never applied — write-ahead means refused = not run.
            count = await client.count(501.0, 502.0)
            assert count == 0
            server._store_closed = True
            server.store.close()

    run(main())


def test_stats_expose_resilience_counters():
    async def main():
        async with ReproServer(DynamicIRS(DATA, seed=1), seed=5) as server:
            stats = (await server.submit({"op": "stats", "id": 1}))["result"]
        for key in ("dedup_hits", "wal_failures", "arrival_rate", "drain_rate"):
            assert key in stats

    run(main())
