"""The file-backed cold tier: codec, typed errors, pool ordering, parity."""

from __future__ import annotations

import pytest

from repro import ExternalIRS
from repro.em import BlockDevice, BufferPool
from repro.errors import BlockNotAllocatedError, CapacityError, StorageError
from repro.store import FileDevice
from repro.workloads import gaussian_mixture


def make_file_device(tmp_path, block_size=8, name="dev.bin"):
    return FileDevice(tmp_path / name, block_size)


def devices(tmp_path, block_size=8):
    """Both StorageBackend implementations, for behavior-parity tests."""
    return [BlockDevice(block_size), make_file_device(tmp_path, block_size)]


# -- codec --------------------------------------------------------------------


def test_filedevice_codec_roundtrip_all_block_shapes(tmp_path):
    dev = make_file_device(tmp_path)
    values_bid, pairs_bid, node_bid = dev.allocate(), dev.allocate(), dev.allocate()
    dev.write(values_bid, [1.5, -2.0, 3.25])
    dev.write(pairs_bid, [(7, 1.5), (9, -2.0)])
    dev.write(node_bid, [[0.5, 1.5, 2.5], [10, 11, 12, 13][:3]])
    assert dev.read(values_bid) == [1.5, -2.0, 3.25]
    assert dev.read(pairs_bid) == [(7, 1.5), (9, -2.0)]
    assert dev.read(node_bid) == [[0.5, 1.5, 2.5], [10, 11, 12]]
    # Overwrite with a different shape: the slot re-tags itself.
    dev.write(values_bid, [(1, 9.0)])
    assert dev.read(values_bid) == [(1, 9.0)]
    dev.write(values_bid, [])
    assert dev.read(values_bid) == []
    dev.close()


def test_filedevice_allocated_but_unwritten_reads_empty(tmp_path):
    dev = make_file_device(tmp_path)
    bid = dev.allocate()
    assert dev.read(bid) == []
    dev.close()


def test_filedevice_persists_across_reopen(tmp_path):
    dev = make_file_device(tmp_path)
    bid = dev.allocate()
    dev.write(bid, [4.0, 5.0])
    dev.sync()
    dev.close()
    dev = make_file_device(tmp_path)
    # Allocation state is in-memory (the cold tier is rebuilt on recovery),
    # so re-allocate block 0 and read what the file still holds.
    assert dev.allocate() == bid
    assert dev.read(bid) == [4.0, 5.0]
    dev.close()


def test_filedevice_header_validation(tmp_path):
    dev = make_file_device(tmp_path)
    dev.close()
    with pytest.raises(StorageError):
        FileDevice(tmp_path / "dev.bin", 16)  # block size mismatch
    junk = tmp_path / "junk.bin"
    junk.write_bytes(b"not a device file, definitely")
    with pytest.raises(StorageError):
        FileDevice(junk, 8)
    with pytest.raises(CapacityError):
        FileDevice(tmp_path / "tiny.bin", 1)


# -- typed errors, both backends ---------------------------------------------


def test_double_free_is_typed_on_both_devices(tmp_path):
    for dev in devices(tmp_path):
        bid = dev.allocate()
        dev.free(bid)
        with pytest.raises(BlockNotAllocatedError):
            dev.free(bid)
        # The typed error keeps its historical KeyError lineage so legacy
        # callers catching KeyError still work.
        assert issubclass(BlockNotAllocatedError, StorageError)
        assert issubclass(BlockNotAllocatedError, KeyError)


def test_read_and_write_after_free_are_typed(tmp_path):
    for dev in devices(tmp_path):
        bid = dev.allocate()
        dev.write(bid, [1.0])
        dev.free(bid)
        with pytest.raises(BlockNotAllocatedError):
            dev.read(bid)
        with pytest.raises(BlockNotAllocatedError):
            dev.write(bid, [2.0])


def test_unallocated_block_access_is_typed(tmp_path):
    for dev in devices(tmp_path):
        with pytest.raises(BlockNotAllocatedError):
            dev.read(12345)
        with pytest.raises(BlockNotAllocatedError):
            dev.write(12345, [1.0])


def test_overfull_write_is_capacity_error(tmp_path):
    for dev in devices(tmp_path, block_size=4):
        bid = dev.allocate()
        with pytest.raises(CapacityError):
            dev.write(bid, [1.0] * 5)


def test_filedevice_free_list_reuse(tmp_path):
    dev = make_file_device(tmp_path)
    a, b = dev.allocate(), dev.allocate()
    dev.free(a)
    assert dev.allocate() == a
    assert dev.blocks_in_use == 2
    assert (dev.stats.allocated, dev.stats.freed) == (3, 1)
    dev.free(a)
    dev.free(b)
    assert dev.blocks_in_use == 0


# -- buffer pool ordering -----------------------------------------------------


class _OrderSpy:
    """StorageBackend double that records the write order it sees."""

    def __init__(self, inner):
        self.inner = inner
        self.write_order = []

    def write(self, bid, items):
        self.write_order.append(bid)
        self.inner.write(bid, items)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def test_bufferpool_flush_writes_in_block_id_order(tmp_path):
    for raw in devices(tmp_path, block_size=4):
        spy = _OrderSpy(raw)
        pool = BufferPool(spy, capacity=16)
        bids = [raw.allocate() for _ in range(8)]
        for bid in [5, 2, 7, 0, 3, 6, 1, 4]:
            pool.put(bids[bid], [float(bid)])
        before = raw.stats.snapshot()
        pool.flush()
        assert spy.write_order == sorted(bids)
        # Ascending contiguous ids flush as one sequential streaming run.
        delta = raw.stats.delta(before)
        assert delta.writes == 8
        assert delta.sequential_writes == 7
        pool.flush()  # idempotent: nothing dirty remains
        assert len(spy.write_order) == 8


def test_bufferpool_read_after_free_is_typed(tmp_path):
    for dev in devices(tmp_path):
        pool = BufferPool(dev, capacity=4)
        bid = dev.allocate()
        pool.put(bid, [1.0])
        pool.flush()
        pool.invalidate(bid)
        dev.free(bid)
        with pytest.raises(BlockNotAllocatedError):
            pool.get(bid)


# -- ExternalIRS parity: simulated device vs real file ------------------------


def test_external_irs_identical_io_on_file_and_simulated_device(tmp_path):
    data = gaussian_mixture(4000, clusters=3, seed=17)
    sim = ExternalIRS(data, block_size=64, seed=23)
    real = ExternalIRS(
        data, block_size=64, seed=23,
        device=FileDevice(tmp_path / "irs.bin", 64),
    )
    lo, hi = sorted(data)[len(data) // 8], sorted(data)[(7 * len(data)) // 8]
    for irs in (sim, real):
        irs.sample_bulk(lo, hi, 500, seed=5)
        irs.sample_bulk(lo, hi, 37, seed=6)
        irs.count(lo, hi)
    assert real.device.stats == sim.device.stats
    assert list(real.sample_bulk(lo, hi, 64, seed=9)) == list(
        sim.sample_bulk(lo, hi, 64, seed=9)
    )
    assert real.export_sorted().tolist() == sim.export_sorted().tolist()
    assert real.count(lo, hi) == sim.count(lo, hi)
    real.close()
    sim.close()
