"""The serving layer end to end: protocol, equivalence, reproducibility."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import (
    DynamicIRS,
    ShardedIRS,
    StaticIRS,
    WeightedDynamicIRS,
    WeightedStaticIRS,
)
from repro.serve import ReproServer, ServeClient, ServeError, TCPServeClient
from repro.serve.protocol import decode, encode, error_response, ok_response
from repro.stats import uniformity_test
from repro.workloads import duplicate_heavy, gaussian_mixture


def run(coro):
    return asyncio.run(coro)


DATA = sorted(gaussian_mixture(4000, clusters=4, seed=11))
WEIGHTS = [1.0 + (i % 7) for i in range(len(DATA))]


def mid_range():
    return DATA[len(DATA) // 10], DATA[(9 * len(DATA)) // 10]


# -- protocol ---------------------------------------------------------------


def test_protocol_roundtrip():
    message = {"id": 3, "op": "sample", "lo": 0.25, "hi": 1.5, "t": 4}
    assert decode(encode(message)) == message


def test_protocol_rejects_bad_json():
    from repro.serve.protocol import RequestError

    with pytest.raises(RequestError) as info:
        decode(b"{nope")
    assert info.value.code == "bad_request"
    with pytest.raises(RequestError):
        decode(b"[1, 2, 3]")


def test_response_envelopes():
    assert ok_response(7, [1.0]) == {"id": 7, "ok": True, "result": [1.0]}
    from repro.errors import EmptyRangeError

    body = error_response(None, EmptyRangeError("nothing here"))
    assert body["ok"] is False
    assert body["error"]["type"] == "empty_range"
    assert "nothing" in body["error"]["message"]


# -- basic ops, in process ---------------------------------------------------


def test_all_ops_in_process():
    async def main():
        structures = {
            "default": DynamicIRS(DATA, seed=1),
            "weighted": WeightedStaticIRS(DATA, [1.0] * len(DATA), seed=2),
        }
        async with ReproServer(structures, seed=5) as server:
            client = ServeClient(server)
            lo, hi = mid_range()
            assert await client.ping() == "pong"
            baseline = await client.count(lo, hi)
            assert baseline == sum(1 for v in DATA if lo <= v <= hi)
            samples = await client.sample(lo, hi, 32)
            assert len(samples) == 32
            assert all(lo <= s <= hi for s in samples)
            assert await client.insert(lo) == 1
            assert await client.insert_bulk([lo, lo, lo]) == 3
            assert await client.count(lo, hi) == baseline + 4
            assert await client.delete(lo) == 1
            assert await client.delete_bulk([lo, lo, lo]) == 3
            assert await client.count(lo, hi) == baseline
            weighted = await client.sample(lo, hi, 4, structure="weighted")
            assert len(weighted) == 4
            stats = await client.server_stats()
            assert stats["admitted"] == 9  # ping/stats answer at admission
            assert stats["replies_ok"] == 9

    run(main())


def test_empty_bulk_resolves_immediately():
    async def main():
        async with ReproServer(DynamicIRS(DATA, seed=1)) as server:
            client = ServeClient(server)
            assert await client.insert_bulk([]) == 0
            assert await client.delete_bulk([]) == 0

    run(main())


def test_typed_errors_in_process():
    async def main():
        async with ReproServer(StaticIRS(DATA, seed=1), max_t=100) as server:
            client = ServeClient(server)
            codes = {}
            for payload, key in [
                ({"op": "warp", "id": 1}, "unknown_op"),
                ({"op": "count", "lo": 0.0, "hi": 1.0, "structure": "x"}, "unknown_structure"),
                ({"op": "sample", "lo": 2.0, "hi": 1.0, "t": 1}, "invalid_query"),
                ({"op": "sample", "lo": 0.0, "hi": 1.0, "t": 101}, "too_large"),
                ({"op": "sample", "lo": "a", "hi": 1.0, "t": 1}, "bad_request"),
                ({"op": "sample", "lo": 0.0, "hi": 1.0, "t": 1, "seed": "x"}, "bad_request"),
                ({"op": "insert", "value": 1.0}, "invalid_query"),  # static: no updates
                ({"op": "sample", "lo": 1e9, "hi": 2e9, "t": 1}, "empty_range"),
                ({"op": "delete", "value": 12.0, "structure": "default"}, "invalid_query"),
            ]:
                response = await client.request(payload)
                assert response["ok"] is False, payload
                codes[key] = response["error"]["type"]
            for key, got in codes.items():
                assert got == key, f"expected {key}, got {got}"

    run(main())


def test_delete_missing_is_key_not_found():
    async def main():
        async with ReproServer(DynamicIRS(DATA, seed=1)) as server:
            client = ServeClient(server)
            with pytest.raises(ServeError) as info:
                await client.delete(1e12)
            assert info.value.code == "key_not_found"

    run(main())


# -- equivalence and reproducibility ----------------------------------------


def test_served_samples_are_uniform():
    """The statistical acceptance gate holds through the server path."""

    async def main():
        data = duplicate_heavy(400, distinct=25, seed=33)
        async with ReproServer(DynamicIRS(data, seed=42), seed=9) as server:
            client = ServeClient(server)
            ordered = sorted(data)
            lo, hi = ordered[len(ordered) // 10], ordered[(9 * len(ordered)) // 10]
            chunks = await asyncio.gather(
                *(client.sample(lo, hi, 1500) for _ in range(8))
            )
            samples = [value for chunk in chunks for value in chunk]
            population = [v for v in data if lo <= v <= hi]
            _stat, p = uniformity_test(samples, population)
            assert p > 1e-4, f"server-path sampling biased: p={p:.2e}"

    run(main())


def test_served_weighted_samples_are_proportional():
    """The weighted chi-square gate holds through the server path."""
    from collections import Counter

    from repro.stats import chi_square_gof

    async def main():
        values = [float(v) for v in range(40)]
        weights = [1.0 + (v % 5) * 3.0 for v in range(40)]
        structure = WeightedDynamicIRS(values, weights, seed=21)
        async with ReproServer(structure, seed=9) as server:
            client = ServeClient(server)
            chunks = await asyncio.gather(
                *(client.sample(5.0, 34.0, 2000) for _ in range(6))
            )
        samples = Counter(v for chunk in chunks for v in chunk)
        population = [v for v in values if 5.0 <= v <= 34.0]
        counts = [samples.get(v, 0) for v in population]
        expected = [weights[int(v)] for v in population]
        _stat, p = chi_square_gof(counts, expected)
        assert p > 1e-4, f"server-path weighted sampling biased: p={p:.2e}"

    run(main())


@pytest.mark.parametrize(
    "factory",
    [
        lambda: StaticIRS(DATA, seed=1),
        lambda: DynamicIRS(DATA, seed=1),
        lambda: WeightedDynamicIRS(DATA, WEIGHTS, seed=1),
        lambda: ShardedIRS(DATA, num_shards=3, seed=1),
        lambda: ShardedIRS(
            DATA, num_shards=3, weights=WEIGHTS, seed=1,
            shard_kind="weighted-dynamic",
        ),
    ],
    ids=["static", "dynamic", "weighted-dynamic", "sharded", "sharded-weighted"],
)
def test_replies_byte_identical_across_coalescing_configs(factory):
    """A fixed root seed fixes every reply, however batches happen to form."""
    lo, hi = mid_range()
    requests = []
    for i in range(120):
        slot = i % 5
        if slot < 3:
            requests.append({"op": "sample", "lo": lo, "hi": hi, "t": 1 + i % 9})
        elif slot == 3:
            requests.append({"op": "count", "lo": lo, "hi": hi})
        else:
            requests.append({"op": "insert", "value": lo + 0.001 * i})

    async def transcript(window, max_batch):
        async with ReproServer(
            factory(), seed=77, window=window, max_batch=max_batch
        ) as server:
            responses = await ServeClient(server).pipeline(requests)
            return json.dumps(responses, sort_keys=True)

    async def main():
        naive = await transcript(0.0, 1)
        wide = await transcript(0.004, 256)
        ragged = await transcript(0.001, 7)
        assert naive == wide == ragged

    run(main())


def test_client_seed_pins_the_reply():
    async def main():
        async with ReproServer(StaticIRS(DATA, seed=1), seed=5) as server:
            client = ServeClient(server)
            lo, hi = mid_range()
            one = await client.sample(lo, hi, 16, seed=424242)
            two = await client.sample(lo, hi, 16, seed=424242)
            other = await client.sample(lo, hi, 16, seed=424243)
            assert one == two
            assert one != other

    run(main())


def test_serves_sharded_structure():
    async def main():
        sharded = ShardedIRS(DATA, num_shards=4, seed=3)
        async with ReproServer(sharded, seed=5) as server:
            client = ServeClient(server)
            lo, hi = mid_range()
            samples = await client.sample(lo, hi, 64)
            assert len(samples) == 64
            assert all(lo <= s <= hi for s in samples)
            assert await client.count(lo, hi) == sharded.count(lo, hi)
        sharded.close()

    run(main())


# -- backpressure ------------------------------------------------------------


def test_admission_queue_backpressure():
    async def main():
        async with ReproServer(
            StaticIRS(DATA, seed=1), window=0.05, max_pending=4, max_batch=4
        ) as server:
            client = ServeClient(server)
            lo, hi = mid_range()
            futures = [
                server.submit({"op": "sample", "lo": lo, "hi": hi, "t": 1, "id": i})
                for i in range(40)
            ]
            responses = await asyncio.gather(*futures)
            overloaded = [r for r in responses if not r["ok"]]
            served = [r for r in responses if r["ok"]]
            assert served, "some requests must be admitted"
            assert overloaded, "queue bound must refuse the overflow"
            assert all(r["error"]["type"] == "overloaded" for r in overloaded)
            assert client is not None

    run(main())


def test_submit_after_close_is_shutting_down():
    async def main():
        server = ReproServer(StaticIRS(DATA, seed=1))
        await server.start()
        await server.aclose()
        response = await server.submit({"op": "ping", "id": 1})
        assert response["ok"] is False
        assert response["error"]["type"] == "shutting_down"

    run(main())


# -- TCP ---------------------------------------------------------------------


def test_tcp_roundtrip_and_pipelining():
    async def main():
        server = ReproServer(DynamicIRS(DATA, seed=1), seed=5, window=0.001)
        await server.start_tcp(port=0)
        lo, hi = mid_range()
        client = await TCPServeClient.connect("127.0.0.1", server.port)
        assert await client.ping() == "pong"
        samples = await client.sample(lo, hi, 8)
        assert len(samples) == 8
        responses = await client.pipeline(
            [{"op": "count", "lo": lo, "hi": hi}] * 5
            + [{"op": "sample", "lo": lo, "hi": hi, "t": 3}] * 5
        )
        assert all(r["ok"] for r in responses)
        stats = await client.server_stats()
        assert stats["batches"] >= 1
        await client.aclose()
        await server.aclose()

    run(main())


def test_tcp_many_clients_agree_with_direct_calls():
    async def main():
        server = ReproServer(StaticIRS(DATA, seed=1), seed=5, window=0.002)
        await server.start_tcp(port=0)
        lo, hi = mid_range()
        clients = await asyncio.gather(
            *(TCPServeClient.connect("127.0.0.1", server.port) for _ in range(8))
        )
        counts = await asyncio.gather(*(c.count(lo, hi) for c in clients))
        expected = sum(1 for v in DATA if lo <= v <= hi)
        assert counts == [expected] * len(clients)
        for client in clients:
            await client.aclose()
        await server.aclose()

    run(main())


def test_tcp_bad_json_gets_typed_error_reply():
    async def main():
        server = ReproServer(StaticIRS(DATA, seed=1), window=0.0)
        await server.start_tcp(port=0)
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        writer.write(b"this is not json\n")
        await writer.drain()
        reply = json.loads(await reader.readline())
        assert reply["ok"] is False
        assert reply["error"]["type"] == "bad_request"
        writer.close()
        await server.aclose()

    run(main())


# -- CLI ---------------------------------------------------------------------


def test_cli_serve_offline_mode(tmp_path, capsys):
    from repro.cli import main

    data_file = tmp_path / "points.txt"
    data_file.write_text(" ".join(str(v) for v in DATA[:500]))
    lo, hi = DATA[50], DATA[450]
    requests_file = tmp_path / "requests.jsonl"
    requests_file.write_text(
        "\n".join(
            json.dumps(payload)
            for payload in [
                {"op": "count", "lo": lo, "hi": hi, "id": 1},
                {"op": "sample", "lo": lo, "hi": hi, "t": 3, "id": 2},
                {"op": "insert", "value": lo, "id": 3},
                {"op": "sample", "lo": 1e9, "hi": 2e9, "t": 1, "id": 4},
            ]
        )
    )
    code = main(
        [
            "serve",
            "--data", str(data_file),
            "--structure", "dynamic",
            "--seed", "7",
            "--requests", str(requests_file),
        ]
    )
    assert code == 0
    lines = capsys.readouterr().out.strip().splitlines()
    payloads = [json.loads(line) for line in lines if not line.startswith("#")]
    assert [p["id"] for p in payloads] == [1, 2, 3, 4]
    assert payloads[0]["ok"] and isinstance(payloads[0]["result"], int)
    assert len(payloads[1]["result"]) == 3
    assert payloads[3]["error"]["type"] == "empty_range"
    assert lines[-1].startswith("# requests=4")


def test_cli_serve_offline_reproducible(tmp_path, capsys):
    from repro.cli import main

    data_file = tmp_path / "points.txt"
    data_file.write_text(" ".join(str(v) for v in DATA[:500]))
    requests_file = tmp_path / "requests.jsonl"
    requests_file.write_text(
        json.dumps({"op": "sample", "lo": DATA[50], "hi": DATA[450], "t": 8, "id": 1})
    )
    outputs = []
    for _ in range(2):
        main(
            [
                "serve",
                "--data", str(data_file),
                "--seed", "123",
                "--requests", str(requests_file),
            ]
        )
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]
