"""The retrying client and the server's exactly-once dedup window."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import DynamicIRS
from repro.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    RetriesExhaustedError,
)
from repro.faults import FaultPlan, FaultyProxy
from repro.serve import ReproServer, ResilientClient, RetryPolicy, TCPServeClient

DATA = [float(i) for i in range(60)]


def run(coro):
    return asyncio.run(coro)


def make_server():
    return ReproServer(DynamicIRS(DATA, seed=1), seed=5)


FAST = RetryPolicy(max_attempts=6, base_delay=0.005, max_delay=0.02)


# -- TCP client failure surfacing ---------------------------------------------


def test_tcp_client_surfaces_malformed_frames():
    async def garbage_server(reader, writer):
        await reader.readline()
        writer.write(b"this is not json\n")
        await writer.drain()

    async def main():
        server = await asyncio.start_server(garbage_server, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        client = await TCPServeClient.connect("127.0.0.1", port)
        try:
            with pytest.raises(ConnectionLostError, match="malformed reply"):
                await client.request({"op": "ping", "id": 1})
            assert client.is_closed
            # A closed client refuses new work with the same typed error.
            with pytest.raises(ConnectionLostError):
                await client.request({"op": "ping", "id": 2})
        finally:
            await client.aclose()
            server.close()
            await server.wait_closed()

    run(main())


def test_tcp_client_surfaces_mid_reply_disconnect():
    async def dying_server(reader, writer):
        await reader.readline()
        writer.write(b'{"id": 1, "ok"')  # half a frame, then gone
        await writer.drain()
        writer.close()

    async def main():
        server = await asyncio.start_server(dying_server, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        client = await TCPServeClient.connect("127.0.0.1", port)
        try:
            with pytest.raises(ConnectionLostError):
                await client.request({"op": "ping", "id": 1})
        finally:
            await client.aclose()
            server.close()
            await server.wait_closed()

    run(main())


# -- the retry loop -----------------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        ResilientClient(policy=RetryPolicy(max_attempts=0))


def test_resilient_client_plain_roundtrip():
    async def main():
        async with make_server() as server:
            await server.start_tcp("127.0.0.1", 0)
            async with ResilientClient("127.0.0.1", server.port, seed=1) as client:
                samples = await client.sample(0.0, 59.0, 8, seed=42)
                assert len(samples) == 8
                assert await client.insert(500.5) == 1
                assert await client.count(500.0, 501.0) == 1
                assert client.retries == 0 and client.reconnects == 0

    run(main())


def test_retry_through_dropped_reply_is_exactly_once():
    # The proxy drops the insert's ack *after* the server executed it —
    # the classic double-apply window.  The client retries with the same
    # rid; dedup answers with the recorded outcome.
    async def main():
        async with make_server() as server:
            await server.start_tcp("127.0.0.1", 0)
            plan = FaultPlan(0, at={"proxy.drop": {0}})
            async with FaultyProxy(plan, server.port) as proxy:
                client = ResilientClient(
                    "127.0.0.1", proxy.port, policy=FAST, seed=2
                )
                try:
                    assert await client.insert(777.5) == 1
                    assert client.retries >= 1
                    assert client.reconnects >= 1
                    assert await client.count(777.0, 778.0) == 1
                finally:
                    await client.aclose()
            assert server.stats.dedup_hits >= 1

    run(main())


def test_retry_through_truncated_reply():
    async def main():
        async with make_server() as server:
            await server.start_tcp("127.0.0.1", 0)
            plan = FaultPlan(1, at={"proxy.truncate": {0}})
            async with FaultyProxy(plan, server.port) as proxy:
                client = ResilientClient(
                    "127.0.0.1", proxy.port, policy=FAST, seed=3
                )
                try:
                    # Seeded: the retried read returns the same bytes a
                    # fault-free call would.
                    direct = await client.sample(0.0, 59.0, 6, seed=9)
                finally:
                    await client.aclose()
            async with make_server() as clean_server:
                await clean_server.start_tcp("127.0.0.1", 0)
                async with ResilientClient(
                    "127.0.0.1", clean_server.port, seed=3
                ) as clean:
                    assert await clean.sample(0.0, 59.0, 6, seed=9) == direct

    run(main())


def test_deadline_exceeded_on_hung_server():
    async def hung_server(reader, writer):
        await reader.read()  # consume everything, answer nothing

    async def main():
        server = await asyncio.start_server(hung_server, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        policy = RetryPolicy(max_attempts=10, deadline=0.2, base_delay=0.01)
        client = ResilientClient("127.0.0.1", port, policy=policy, seed=4)
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            with pytest.raises(DeadlineExceededError):
                await client.ping()
            assert loop.time() - started < 5.0
        finally:
            await client.aclose()
            server.close()
            await server.wait_closed()

    run(main())


def test_retries_exhausted_chains_last_failure():
    async def main():
        async with make_server() as server:
            await server.start_tcp("127.0.0.1", 0)
            plan = FaultPlan(5, rates={"proxy.drop": 1.0})  # every reply dies
            async with FaultyProxy(plan, server.port) as proxy:
                policy = RetryPolicy(max_attempts=3, base_delay=0.005)
                client = ResilientClient(
                    "127.0.0.1", proxy.port, policy=policy, seed=5
                )
                try:
                    with pytest.raises(RetriesExhaustedError) as info:
                        await client.count(0.0, 1.0)
                    assert isinstance(info.value.__cause__, ConnectionLostError)
                    assert client.retries == 2  # 3 attempts = 2 retries
                finally:
                    await client.aclose()

    run(main())


def test_non_retryable_error_returns_immediately():
    async def main():
        async with make_server() as server:
            await server.start_tcp("127.0.0.1", 0)
            async with ResilientClient("127.0.0.1", server.port, seed=6) as client:
                reply = await client.request(
                    {"op": "sample", "lo": 9.0, "hi": 1.0, "t": 2, "id": 1}
                )
                assert reply["ok"] is False
                assert reply["error"]["type"] == "invalid_query"
                assert client.retries == 0

    run(main())


def test_deterministic_jitter_and_rids_from_seed():
    a = ResilientClient(seed=77)
    b = ResilientClient(seed=77)
    c = ResilientClient(seed=78)
    assert a._tag == b._tag != c._tag
    assert [a._next_jitter() for _ in range(8)] == [
        b._next_jitter() for _ in range(8)
    ]


# -- the server-side dedup window ---------------------------------------------


def test_duplicate_rid_replays_recorded_outcome():
    async def main():
        async with make_server() as server:
            first = await server.submit(
                {"op": "insert", "value": 300.5, "rid": "r-1", "id": 1}
            )
            dup = await server.submit(
                {"op": "insert", "value": 300.5, "rid": "r-1", "id": 2}
            )
            assert first == {"id": 1, "ok": True, "result": 1}
            # Same outcome, the duplicate's own request id.
            assert dup == {"id": 2, "ok": True, "result": 1}
            assert server.stats.dedup_hits == 1
            count = await server.submit(
                {"op": "count", "lo": 300.0, "hi": 301.0, "id": 3}
            )
            assert count["result"] == 1  # applied exactly once

    run(main())


def test_duplicate_rid_waits_on_inflight_original():
    async def main():
        async with ReproServer(
            DynamicIRS(DATA, seed=1), seed=5, window=0.05
        ) as server:
            # Submit both before either executes: the duplicate must queue
            # behind the in-flight original, not re-execute.
            f1 = server.submit({"op": "insert", "value": 301.5, "rid": "r-2", "id": 1})
            f2 = server.submit({"op": "insert", "value": 301.5, "rid": "r-2", "id": 2})
            r1, r2 = await asyncio.gather(f1, f2)
            assert r1 == {"id": 1, "ok": True, "result": 1}
            assert r2 == {"id": 2, "ok": True, "result": 1}
            count = await server.submit(
                {"op": "count", "lo": 301.0, "hi": 302.0, "id": 3}
            )
            assert count["result"] == 1

    run(main())


def test_dedup_replays_error_outcomes_too():
    async def main():
        async with make_server() as server:
            first = await server.submit(
                {"op": "delete", "value": 999.5, "rid": "r-3", "id": 1}
            )
            dup = await server.submit(
                {"op": "delete", "value": 999.5, "rid": "r-3", "id": 2}
            )
            assert first["ok"] is False and dup["ok"] is False
            assert first["error"] == dup["error"]
            assert dup["id"] == 2

    run(main())


def test_dedup_window_evicts_oldest():
    async def main():
        async with ReproServer(
            DynamicIRS(DATA, seed=1), seed=5, dedup_window=4
        ) as server:
            for i in range(8):
                await server.submit(
                    {"op": "insert", "value": 400.0 + i, "rid": f"w-{i}", "id": i}
                )
            assert len(server._dedup) <= 4
            # An evicted rid re-executes (the documented horizon trade-off)...
            dup = await server.submit(
                {"op": "insert", "value": 400.0, "rid": "w-0", "id": 99}
            )
            assert dup["ok"] is True
            count = await server.submit(
                {"op": "count", "lo": 400.0, "hi": 400.5, "id": 100}
            )
            assert count["result"] == 2
            # ...while a still-windowed rid dedups.
            assert server.stats.dedup_hits == 0
            await server.submit(
                {"op": "insert", "value": 407.0, "rid": "w-7", "id": 101}
            )
            assert server.stats.dedup_hits == 1

    run(main())


def test_bad_rid_is_refused():
    async def main():
        async with make_server() as server:
            reply = await server.submit(
                {"op": "insert", "value": 1.0, "rid": ["no"], "id": 1}
            )
            assert reply["ok"] is False
            assert reply["error"]["type"] == "bad_request"
            long = await server.submit(
                {"op": "insert", "value": 1.0, "rid": "x" * 201, "id": 2}
            )
            assert long["error"]["type"] == "bad_request"

    run(main())


def test_rids_ride_the_wal_and_survive_restart(tmp_path):
    data_dir = str(tmp_path / "srv")
    payload = {"op": "insert", "value": 555.5, "rid": "crash-rid-1", "id": 1}

    async def before_crash():
        server = ReproServer(
            DynamicIRS(DATA, seed=1), seed=5, data_dir=data_dir
        )
        await server.start()
        reply = await server.submit(dict(payload))
        assert reply["ok"] is True
        # Crash: close the store without the shutdown snapshot, so the WAL
        # suffix (ops + rid spans) is what recovery must replay.
        server._store_closed = True
        server.store.close()
        await server.aclose()

    async def after_restart():
        server = ReproServer(
            DynamicIRS(DATA, seed=1), seed=5, data_dir=data_dir
        )
        assert server.recovery.dedup == {"crash-rid-1": (True, 1)}
        await server.start()
        dup = await server.submit(dict(payload))
        count = await server.submit(
            {"op": "count", "lo": 555.0, "hi": 556.0, "id": 2}
        )
        await server.aclose()
        return dup, count, server.stats.dedup_hits

    run(before_crash())
    dup, count, hits = run(after_restart())
    # The retry across the restart replays the recorded outcome; the
    # insert was applied exactly once.
    assert dup == {"id": 1, "ok": True, "result": 1}
    assert count["result"] == 1
    assert hits == 1


def test_wire_payloads_with_rid_roundtrip():
    # The rid rides the same JSON wire as everything else.
    async def main():
        async with make_server() as server:
            line = json.dumps(
                {"op": "insert", "value": 42.25, "rid": 7, "id": "a"}
            ).encode()
            first = await server.submit(line)
            dup = await server.submit(line)
            assert first["ok"] and dup["ok"]
            assert server.stats.dedup_hits == 1

    run(main())
