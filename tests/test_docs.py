"""Documentation must execute: doctests over README and the docs/ guides.

Every ``>>>`` block in the markdown files runs here (and again in the CI
docs job), so a signature change that invalidates an example fails the
build instead of silently rotting the docs.
"""

from __future__ import annotations

import doctest
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = ["README.md", "docs/architecture.md", "docs/api.md"]


@pytest.mark.parametrize("relpath", DOC_FILES)
def test_documentation_examples_run(relpath):
    path = ROOT / relpath
    assert path.exists(), f"{relpath} is part of the documented surface"
    failures, tests = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert tests > 0, f"{relpath} should contain runnable examples"
    assert failures == 0, f"{failures} doctest failure(s) in {relpath}"


def test_docs_mention_every_layer():
    """The README's API tour must cover the whole stack."""
    readme = (ROOT / "README.md").read_text()
    for token in ["repro.core", "repro.batch", "repro.shard", "repro.serve"]:
        assert token in readme
    for link in ["PAPER.md", "DESIGN.md", "docs/architecture.md", "docs/api.md"]:
        assert link in readme, f"README must link {link}"
