"""Tests for WeightedStaticIRS (extension X1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EmptyRangeError, InvalidQueryError, WeightedStaticIRS
from repro.errors import InvalidWeightError
from repro.stats import chi_square_gof


def brute_force_weight(pairs, lo, hi):
    return sum(w for v, w in pairs if lo <= v <= hi)


class TestConstruction:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            WeightedStaticIRS([1.0, 2.0], [1.0], seed=1)

    def test_invalid_weight_rejected(self):
        with pytest.raises(InvalidWeightError):
            WeightedStaticIRS([1.0], [-1.0], seed=2)
        with pytest.raises(InvalidWeightError):
            WeightedStaticIRS([1.0], [float("nan")], seed=3)
        with pytest.raises(InvalidWeightError):
            WeightedStaticIRS([1.0], [float("inf")], seed=3)

    def test_invalid_weight_reported_before_prefix_sums(self):
        # Regression: validation used to run after sorting/zipping, so a NaN
        # weight poisoned the prefix sums before being reported.  It must be
        # caught first, whatever position it occupies.
        values = [float(i) for i in range(6)]
        for bad_at in (0, 3, 5):
            weights = [1.0] * 6
            weights[bad_at] = float("nan")
            with pytest.raises(InvalidWeightError):
                WeightedStaticIRS(values, weights, seed=4)
        with pytest.raises(InvalidWeightError):
            WeightedStaticIRS(values, [1.0, 2.0, -0.5, 1.0, 1.0, 1.0], seed=4)

    def test_unsorted_input_is_sorted_with_weights_attached(self):
        w = WeightedStaticIRS([3.0, 1.0, 2.0], [30.0, 10.0, 20.0], seed=4)
        assert w.report(0.0, 10.0) == [1.0, 2.0, 3.0]
        assert w.total_weight(1.0, 1.0) == pytest.approx(10.0)
        assert w.total_weight(3.0, 3.0) == pytest.approx(30.0)


class TestQueries:
    def test_count_report_total_weight(self):
        rng = random.Random(5)
        pairs = [(rng.uniform(0, 10), rng.uniform(0, 2)) for _ in range(800)]
        w = WeightedStaticIRS(*zip(*pairs), seed=6)
        for lo, hi in [(1.0, 2.0), (0.0, 10.0), (4.5, 4.6), (9.9, 20.0)]:
            expected = sorted(v for v, _ in pairs if lo <= v <= hi)
            assert w.report(lo, hi) == expected
            assert w.count(lo, hi) == len(expected)
            assert w.total_weight(lo, hi) == pytest.approx(
                brute_force_weight(pairs, lo, hi)
            )

    def test_empty_range_raises(self):
        w = WeightedStaticIRS([1.0, 2.0], [1.0, 1.0], seed=7)
        with pytest.raises(EmptyRangeError):
            w.sample(5.0, 6.0, 1)

    def test_zero_weight_range_raises(self):
        w = WeightedStaticIRS([1.0, 2.0, 3.0], [0.0, 0.0, 5.0], seed=8)
        with pytest.raises(EmptyRangeError):
            w.sample(1.0, 2.0, 1)

    def test_zero_weight_points_never_sampled(self):
        w = WeightedStaticIRS(
            [float(i) for i in range(50)],
            [0.0 if i % 2 else 1.0 for i in range(50)],
            seed=9,
        )
        samples = w.sample(0.0, 49.0, 2000)
        assert all(v % 2 == 0 for v in samples)

    def test_t_zero(self):
        w = WeightedStaticIRS([1.0], [1.0], seed=10)
        assert w.sample(0.0, 2.0, 0) == []

    def test_invalid_query(self):
        w = WeightedStaticIRS([1.0], [1.0], seed=11)
        with pytest.raises(InvalidQueryError):
            w.sample(2.0, 1.0, 1)


class TestDistribution:
    def _check_proportional(self, values, weights, lo, hi, seed, draws=30_000):
        w = WeightedStaticIRS(values, weights, seed=seed)
        ranks = w.sample_ranks(lo, hi, draws)
        a, b = w.rank_range(lo, hi)
        observed = [0] * (b - a)
        for r in ranks:
            assert a <= r < b
            observed[r - a] += 1
        expected = [w.weight_at_rank(r) for r in range(a, b)]
        # Merge bins with tiny expectation to keep the GOF test well-posed.
        total = sum(expected)
        min_mass = 5.0 / draws
        merged_obs, merged_exp = [0], [0.0]
        for obs, exp in zip(observed, expected):
            merged_obs[-1] += obs
            merged_exp[-1] += exp
            if merged_exp[-1] / total >= min_mass:
                merged_obs.append(0)
                merged_exp.append(0.0)
        if merged_exp[-1] == 0.0:
            merged_obs.pop()
            merged_exp.pop()
        _stat, p = chi_square_gof(merged_obs, merged_exp)
        assert p > 1e-4

    def test_proportional_uniform_weights(self):
        self._check_proportional(
            [float(i) for i in range(64)], [1.0] * 64, 10.0, 53.0, seed=12
        )

    def test_proportional_linear_weights(self):
        self._check_proportional(
            [float(i) for i in range(64)],
            [float(i + 1) for i in range(64)],
            5.0,
            60.0,
            seed=13,
        )

    def test_proportional_zipf_weights(self):
        rng = random.Random(14)
        n = 128
        weights = [1.0 / (1 + rng.randrange(40)) ** 1.5 for _ in range(n)]
        self._check_proportional(
            [float(i) for i in range(n)], weights, 3.0, 120.0, seed=15
        )

    def test_boundary_only_query_uses_local_alias(self):
        """Ranges narrower than a leaf block skip the canonical nodes."""
        self._check_proportional(
            [float(i) for i in range(64)],
            [float(i % 5 + 1) for i in range(64)],
            20.0,
            24.0,
            seed=16,
            draws=20_000,
        )


@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 40), st.floats(min_value=0.0, max_value=10.0)),
        min_size=1,
        max_size=60,
    ),
    lo=st.integers(0, 40),
    width=st.integers(0, 40),
)
@settings(max_examples=120, deadline=None)
def test_sample_support_matches_positive_weight_members(pairs, lo, width):
    hi = lo + width
    values = [float(v) for v, _ in pairs]
    weights = [w for _, w in pairs]
    sampler = WeightedStaticIRS(values, weights, seed=17)
    in_range_weight = sum(w for v, w in pairs if lo <= v <= hi)
    if in_range_weight <= 0.0:
        with pytest.raises(EmptyRangeError):
            sampler.sample(lo, hi, 1)
        return
    support = {float(v) for v, w in pairs if lo <= v <= hi and w > 0.0}
    support_with_zero_twins = {
        float(v) for v, _ in pairs if lo <= v <= hi and float(v) in support
    }
    samples = sampler.sample(lo, hi, 12)
    assert set(samples) <= support_with_zero_twins


class TestPeekProbes:
    RANGES = [(0.0, 10.0), (5.0, 5.0), (-3.0, 0.5), (8.0, 100.0), (11.0, 12.0)]

    def test_peek_counts_and_weights_match_scalar(self):
        values = [float(i % 13) for i in range(400)]
        weights = [0.5 + (i % 7) for i in range(400)]
        w = WeightedStaticIRS(values, weights, seed=80)
        counts = w.peek_counts(self.RANGES)
        masses = w.peek_weights(self.RANGES)
        for (lo, hi), k, m in zip(self.RANGES, counts, masses):
            assert int(k) == w.count(lo, hi)
            assert float(m) == w.total_weight(lo, hi)  # bit-identical prefix

    def test_peek_rejects_bad_bounds(self):
        from repro import InvalidQueryError

        w = WeightedStaticIRS([1.0], [1.0], seed=81)
        with pytest.raises(InvalidQueryError):
            w.peek_counts([(2.0, 1.0)])
        with pytest.raises(InvalidQueryError):
            w.peek_weights([(float("nan"), 1.0)])

    def test_run_counts_uses_weighted_peek(self):
        from repro import BatchQueryRunner

        values = [float(i) for i in range(50)]
        runner = BatchQueryRunner(
            {
                "ws": WeightedStaticIRS(values, [1.0] * 50, seed=82),
                "wd": __import__("repro").WeightedDynamicIRS(values, seed=83),
            }
        )
        queries = [(0.0, 9.0, "ws"), (0.0, 9.0, "wd"), (40.0, 100.0, "ws")]
        assert runner.run_counts(queries) == [10, 10, 10]
