"""Tests for the vectorized bulk-update engine and the new bulk-read paths.

Four pillars:

* equivalence — ``insert_bulk``/``delete_bulk`` leave the structure
  element-for-element identical to the scalar loop (including duplicates,
  rebuild thresholds, tiny batches below the vectorization cutoff, and the
  atomic failure contract);
* property — a Hypothesis round-trip drives random interleavings of bulk
  and scalar updates against a sorted-list model (the stateful machines in
  ``test_dynamic_irs_stateful``/``test_weighted_dynamic_stateful`` add
  bulk rules on top of this);
* sorted-build fast paths — ``from_sorted`` matches the sorting
  constructor on every sampler and rejects unsorted input;
* distribution — uniformity/proportionality of the new
  ``WeightedDynamicIRS.sample_bulk`` and ``ExternalIRS.sample_bulk``.
"""

from __future__ import annotations

import random
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DynamicIRS,
    ExternalIRS,
    KeyNotFoundError,
    StaticIRS,
    WeightedDynamicIRS,
)
from repro.stats import chi_square_gof, uniformity_test
from repro.workloads import duplicate_heavy, uniform_points

P_PASS = 1e-4


def _deletable(population: list[float], wanted: list[float]) -> list[float]:
    """Filter a delete wish-list down to multiset availability."""
    available = Counter(population)
    out = []
    for value in wanted:
        if available[value] > 0:
            available[value] -= 1
            out.append(value)
    return out


class TestDynamicBulkEquivalence:
    def _pair(self, data, seed=7):
        return DynamicIRS(data, seed=seed), DynamicIRS(data, seed=seed)

    def test_insert_bulk_matches_scalar_loop(self, uniform_data):
        bulk, scalar = self._pair(uniform_data)
        batch = uniform_points(1200, seed=55)
        bulk.insert_bulk(batch)
        for value in batch:
            scalar.insert(value)
        assert bulk.values() == scalar.values()
        bulk.check_invariants()

    def test_delete_bulk_matches_scalar_loop(self, uniform_data):
        bulk, scalar = self._pair(uniform_data)
        batch = random.Random(56).sample(uniform_data, 1200)
        bulk.delete_bulk(batch)
        for value in batch:
            scalar.delete(value)
        assert bulk.values() == scalar.values()
        bulk.check_invariants()

    def test_duplicate_heavy_round_trip(self):
        data = duplicate_heavy(4000, distinct=32, seed=57)
        bulk, scalar = self._pair(data, seed=8)
        rng = random.Random(58)
        inserts = [float(rng.randrange(32)) for _ in range(900)]
        deletes = _deletable(data + inserts, [float(rng.randrange(32)) for _ in range(900)])
        bulk.insert_bulk(inserts)
        bulk.delete_bulk(deletes)
        for value in inserts:
            scalar.insert(value)
        for value in deletes:
            scalar.delete(value)
        assert bulk.values() == scalar.values()
        bulk.check_invariants()

    def test_bulk_into_empty_structure(self):
        d = DynamicIRS(seed=9)
        d.insert_bulk([3.0, 1.0, 2.0])
        assert d.values() == [1.0, 2.0, 3.0]
        d.check_invariants()

    def test_empty_batches_are_noops(self, uniform_data):
        d = DynamicIRS(uniform_data, seed=10)
        before = d.values()
        d.insert_bulk([])
        d.delete_bulk([])
        assert d.values() == before

    def test_growth_batch_triggers_rebuild(self):
        d = DynamicIRS([float(i) for i in range(100)], seed=11)
        s_before = d.chunk_size_bounds[0]
        d.insert_bulk([float(i) + 0.5 for i in range(5000)])
        assert len(d) == 5100
        assert d.chunk_size_bounds[0] >= s_before
        d.check_invariants()

    def test_shrink_batch_triggers_rebuild(self):
        values = [float(i) for i in range(4000)]
        d = DynamicIRS(values, seed=12)
        d.delete_bulk(values[:3500])
        assert d.values() == values[3500:]
        d.check_invariants()

    def test_tiny_batch_below_cutoff(self, uniform_data):
        bulk, scalar = self._pair(uniform_data, seed=13)
        bulk.insert_bulk([0.5, 0.25])
        bulk.delete_bulk([uniform_data[0], uniform_data[1]])
        scalar.insert(0.5)
        scalar.insert(0.25)
        scalar.delete(uniform_data[0])
        scalar.delete(uniform_data[1])
        assert bulk.values() == scalar.values()
        bulk.check_invariants()

    def test_delete_bulk_missing_is_atomic(self, uniform_data):
        d = DynamicIRS(uniform_data, seed=14)
        before = d.values()
        present = random.Random(59).sample(uniform_data, 40)
        with pytest.raises(KeyNotFoundError):
            d.delete_bulk(present + [1e9])
        assert d.values() == before
        d.check_invariants()
        with pytest.raises(KeyNotFoundError):
            DynamicIRS(seed=15).delete_bulk([1.0])

    def test_queries_see_bulk_updates(self, uniform_data):
        d = DynamicIRS(uniform_data, seed=16)
        d.sample_bulk(0.2, 0.8, 64)  # warm the chunk caches
        d.insert_bulk([0.5000001] * 200)
        samples = d.sample_bulk(0.4999, 0.5001, 4000)
        assert (samples == 0.5000001).sum() > 0
        d.delete_bulk([0.5000001] * 200)
        samples = d.sample_bulk(0.2, 0.8, 2000)
        assert not (samples == 0.5000001).any()
        d.check_invariants()

    def test_insert_many_uses_bulk_delete_many_mirrors(self, uniform_data):
        via_many = DynamicIRS(uniform_data, seed=17)
        via_bulk = DynamicIRS(uniform_data, seed=17)
        batch = uniform_points(300, seed=60)
        via_many.insert_many(batch)
        via_bulk.insert_bulk(batch)
        assert via_many.values() == via_bulk.values()
        via_many.delete_many(batch[:150])
        via_bulk.delete_bulk(batch[:150])
        assert via_many.values() == via_bulk.values()


@settings(max_examples=60, deadline=None)
@given(
    initial=st.lists(st.integers(0, 100).map(float), max_size=120),
    inserts=st.lists(st.lists(st.integers(0, 100).map(float), max_size=40), max_size=4),
    delete_seed=st.integers(0, 2**16),
)
def test_bulk_round_trip_property(initial, inserts, delete_seed):
    """Random bulk insert/delete interleavings match a sorted-list model."""
    d = DynamicIRS(initial, seed=21)
    model = sorted(initial)
    rng = random.Random(delete_seed)
    for batch in inserts:
        d.insert_bulk(batch)
        model.extend(batch)
        model.sort()
        if model and rng.random() < 0.7:
            k = rng.randrange(1, len(model) + 1)
            batch_del = _deletable(model, [rng.choice(model) for _ in range(k)])
            d.delete_bulk(batch_del)
            for value in batch_del:
                model.remove(value)
        assert len(d) == len(model)
    assert d.values() == model
    d.check_invariants()


class TestWeightedBulk:
    def test_insert_bulk_matches_scalar_multiset(self):
        rng = random.Random(31)
        vals = [rng.uniform(0, 50) for _ in range(2000)]
        ws = [rng.uniform(0.1, 4.0) for _ in range(2000)]
        bulk = WeightedDynamicIRS(vals, ws, seed=32)
        scalar = WeightedDynamicIRS(vals, ws, seed=32)
        bv = [rng.uniform(0, 50) for _ in range(700)]
        bw = [rng.uniform(0.1, 4.0) for _ in range(700)]
        bulk.insert_bulk(bv, bw)
        for v, w in zip(bv, bw):
            scalar.insert(v, w)
        assert sorted(bulk.items()) == sorted(scalar.items())
        bulk.check_invariants()

    def test_insert_bulk_default_weights(self):
        w = WeightedDynamicIRS([1.0, 2.0], seed=33)
        w.insert_bulk([3.0, 4.0])
        assert w.items() == [(1.0, 1.0), (2.0, 1.0), (3.0, 1.0), (4.0, 1.0)]

    def test_delete_bulk_returns_weights(self):
        vals = [float(i) for i in range(100)]
        ws = [float(i % 9 + 1) for i in range(100)]
        w = WeightedDynamicIRS(vals, ws, seed=34)
        wanted = [5.0, 50.0, 99.0]
        got = w.delete_bulk(wanted)
        assert got == [ws[5], ws[50], ws[99]]
        assert len(w) == 97
        w.check_invariants()

    def test_delete_bulk_missing_is_atomic(self):
        w = WeightedDynamicIRS([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], seed=35)
        before = w.items()
        with pytest.raises(KeyNotFoundError):
            w.delete_bulk([2.0, 9.0])
        assert w.items() == before
        w.check_invariants()

    def test_bulk_round_trip_heavy(self):
        rng = random.Random(36)
        vals = [float(rng.randrange(30)) for _ in range(1500)]
        ws = [rng.uniform(0.5, 2.0) for _ in range(1500)]
        bulk = WeightedDynamicIRS(vals, ws, seed=37)
        scalar = WeightedDynamicIRS(vals, ws, seed=37)
        dels = _deletable(vals, [float(rng.randrange(30)) for _ in range(600)])
        got = bulk.delete_bulk(dels)
        exp = [scalar.delete(v) for v in dels]
        assert sorted(bulk.items()) == sorted(scalar.items())
        assert sum(got) == pytest.approx(sum(exp))
        bulk.check_invariants()


class TestFromSorted:
    def test_static(self, uniform_data):
        data = sorted(uniform_data)
        a = StaticIRS.from_sorted(data, seed=41)
        b = StaticIRS(uniform_data, seed=41)
        assert list(a.values) == list(b.values)
        assert a.sample_bulk(0.2, 0.8, 50).tolist() == b.sample_bulk(0.2, 0.8, 50).tolist()

    def test_dynamic(self, uniform_data):
        data = sorted(uniform_data)
        a = DynamicIRS.from_sorted(data, seed=42)
        b = DynamicIRS(uniform_data, seed=42)
        assert a.values() == b.values()
        a.check_invariants()
        a.insert(0.5)
        a.delete(data[0])
        a.check_invariants()

    def test_dynamic_accepts_numpy_array(self):
        arr = np.sort(np.random.default_rng(1).random(500))
        d = DynamicIRS.from_sorted(arr, seed=43)
        assert len(d) == 500
        d.check_invariants()

    def test_weighted_dynamic(self):
        values = [float(i) for i in range(200)]
        weights = [float(i % 5 + 1) for i in range(200)]
        a = WeightedDynamicIRS.from_sorted(values, weights, seed=44)
        b = WeightedDynamicIRS(values, weights, seed=44)
        assert a.items() == b.items()
        a.check_invariants()

    def test_external(self):
        values = [float(i) for i in range(2000)]
        a = ExternalIRS.from_sorted(values, block_size=128, seed=45)
        assert a.count(0.0, 1999.0) == 2000
        assert a.report(10.0, 20.0) == [float(i) for i in range(10, 21)]

    @pytest.mark.parametrize(
        "factory",
        [
            lambda v: StaticIRS.from_sorted(v),
            lambda v: DynamicIRS.from_sorted(v),
            lambda v: WeightedDynamicIRS.from_sorted(v),
            lambda v: ExternalIRS.from_sorted(v, block_size=8),
        ],
        ids=["static", "dynamic", "weighted-dynamic", "external"],
    )
    def test_unsorted_input_rejected(self, factory):
        with pytest.raises(ValueError):
            factory([3.0, 1.0, 2.0])


class TestNewBulkReadPaths:
    def test_weighted_dynamic_bulk_proportional(self):
        values = [float(i) for i in range(64)]
        weights = [float(i % 8 + 1) for i in range(64)]
        w = WeightedDynamicIRS(values, weights, seed=51)
        samples = w.sample_bulk(10.0, 53.0, 40_000)
        assert ((samples >= 10.0) & (samples <= 53.0)).all()
        population = [v for v in values if 10.0 <= v <= 53.0]
        counts = Counter(samples.tolist())
        _stat, p = chi_square_gof(
            [counts.get(v, 0) for v in population],
            [weights[int(v)] for v in population],
        )
        assert p > P_PASS

    def test_weighted_dynamic_bulk_wide_middle_descent_path(self):
        # Many chunks, few samples per call: the treap-descent middle path.
        values = [float(i) for i in range(20_000)]
        w = WeightedDynamicIRS(values, seed=52)
        collected = np.concatenate(
            [w.sample_bulk(10.5, 19_000.5, 8) for _ in range(1500)]
        )
        population = [v for v in values if 10.5 <= v <= 19_000.5]
        _stat, p = uniformity_test(collected.tolist(), population)
        assert p > P_PASS

    def test_weighted_dynamic_bulk_after_updates(self):
        w = WeightedDynamicIRS([float(i) for i in range(300)], seed=53)
        w.sample_bulk(0.0, 299.0, 100)  # warm np caches
        w.insert_bulk([100.5] * 50, [2.0] * 50)
        samples = w.sample_bulk(100.0, 101.0, 3000)
        assert (samples == 100.5).sum() > 0
        w.delete_bulk([100.5] * 50)
        samples = w.sample_bulk(0.0, 299.0, 2000)
        assert not (samples == 100.5).any()

    def test_weighted_dynamic_bulk_t_zero_and_reproducible(self):
        values = [float(i) for i in range(100)]
        a = WeightedDynamicIRS(values, seed=54)
        b = WeightedDynamicIRS(values, seed=54)
        assert len(a.sample_bulk(0.0, 99.0, 0)) == 0
        assert (a.sample_bulk(5.0, 95.0, 400) == b.sample_bulk(5.0, 95.0, 400)).all()

    def test_external_bulk_uniform_wide(self):
        e = ExternalIRS([float(i) for i in range(32_768)], block_size=128, seed=55)
        samples = e.sample_bulk(100.0, 32_000.0, 20_000)
        population = [float(i) for i in range(100, 32_001)]
        assert ((samples >= 100.0) & (samples <= 32_000.0)).all()
        _stat, p = uniformity_test(samples.tolist(), population)
        assert p > P_PASS

    def test_external_bulk_uniform_narrow(self):
        # K < B: the whole range sits inside one or two blocks.
        e = ExternalIRS([float(i) for i in range(4096)], block_size=256, seed=56)
        samples = e.sample_bulk(50.0, 80.0, 20_000)
        _stat, p = uniformity_test(
            samples.tolist(), [float(i) for i in range(50, 81)]
        )
        assert p > P_PASS

    def test_external_bulk_block_io_is_batched(self):
        e = ExternalIRS([float(i) for i in range(65_536)], block_size=256, seed=57)
        before = e.device.stats.snapshot()
        e.sample_bulk(0.0, 65_535.0, 4096)
        delta = e.io_delta(before)
        # One read per touched block at most: never t reads.
        assert delta.reads <= 65_536 // 256 + e.tree.height + 2

    def test_external_bulk_reproducible(self):
        a = ExternalIRS([float(i) for i in range(5000)], block_size=128, seed=58)
        b = ExternalIRS([float(i) for i in range(5000)], block_size=128, seed=58)
        assert (a.sample_bulk(10.0, 4990.0, 300) == b.sample_bulk(10.0, 4990.0, 300)).all()
