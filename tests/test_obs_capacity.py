"""Capacity accounting, the admission gate, and the window controller."""

from __future__ import annotations

import pytest

from repro import (
    ExternalIRS,
    ShardedIRS,
    StaticIRS,
    WeightedStaticIRS,
)
from repro.obs import AdmissionGate, WindowController, resident_bytes, structure_bytes
from repro.obs.capacity import POINT_BYTES

DATA = [float(i) for i in range(1000)]


# -- resident-byte accounting ------------------------------------------------


def test_structure_bytes_single_plane():
    s = StaticIRS(DATA, seed=1)
    assert structure_bytes(s) == len(DATA) * POINT_BYTES


def test_structure_bytes_weighted_two_planes():
    s = WeightedStaticIRS(DATA, [1.0] * len(DATA), seed=1)
    assert structure_bytes(s) == len(DATA) * 2 * POINT_BYTES


def test_resident_bytes_recurses_shards():
    s = ShardedIRS(DATA, num_shards=4, seed=1)
    total = resident_bytes(s)
    assert total == sum(structure_bytes(shard) for shard in s.shards)
    assert total >= len(DATA) * POINT_BYTES


def test_external_memory_priced_by_pooled_frames():
    s = ExternalIRS(DATA, block_size=64, pool_capacity=4, seed=1)
    priced = structure_bytes(s)
    # Resident cost is the pooled frames, not the whole on-device file.
    assert priced <= s.pool.capacity * s.device.block_size * POINT_BYTES
    assert priced < len(DATA) * POINT_BYTES


# -- admission gate ----------------------------------------------------------


def test_gate_requires_positive_overcommit():
    with pytest.raises(ValueError):
        AdmissionGate(16, overcommit=0.0)


def test_unconfigured_components_never_gate():
    gate = AdmissionGate(max_pending=8)
    admitted, component = gate.admit(depth=7, arrival_rate=1e9)
    assert admitted and component is None
    assert gate.components(4, 0.0) == {"queue": 0.5}


def test_memory_component_gates():
    s = StaticIRS(DATA, seed=1)
    budget = structure_bytes(s)  # resident == budget -> ratio 1.0 refuses
    gate = AdmissionGate(8, memory_budget=budget)
    gate.watch({"default": s})
    assert gate.resident == budget
    admitted, component = gate.admit(0, 0.0)
    assert not admitted and component == "memory"
    assert gate.refusals == 1
    # Doubling the budget halves the ratio and admits.
    roomy = AdmissionGate(8, memory_budget=2 * budget)
    roomy.watch({"default": s})
    assert roomy.admit(0, 0.0) == (True, None)
    assert roomy.pressure(0, 0.0) == pytest.approx(0.5)


def test_rate_component_gates():
    gate = AdmissionGate(8, rate_capacity=100.0)
    assert gate.admit(0, 99.0) == (True, None)
    admitted, component = gate.admit(0, 150.0)
    assert not admitted and component == "rate"


def test_overcommit_scales_both_budgets():
    s = StaticIRS(DATA, seed=1)
    budget = structure_bytes(s)
    gate = AdmissionGate(8, memory_budget=budget, rate_capacity=100.0, overcommit=2.0)
    gate.watch({"default": s})
    # Resident == raw budget, but 2x over-commit halves the ratio.
    assert gate.admit(0, 150.0) == (True, None)
    assert gate.components(0, 150.0)["memory"] == pytest.approx(0.5)
    assert gate.components(0, 150.0)["rate"] == pytest.approx(0.75)
    # Under-commit (ratio < 1) reserves headroom instead.
    tight = AdmissionGate(8, rate_capacity=100.0, overcommit=0.5)
    assert tight.admit(0, 60.0) == (False, "rate")


def test_pressure_is_max_of_components():
    s = StaticIRS(DATA, seed=1)
    gate = AdmissionGate(
        max_pending=10, memory_budget=10 * structure_bytes(s), rate_capacity=100.0
    )
    gate.watch({"default": s})
    # queue 0.8, memory 0.1, rate 0.5 -> the scarcest resource wins.
    assert gate.pressure(8, 50.0) == pytest.approx(0.8)


def test_resident_refresh_is_amortized():
    s = StaticIRS(DATA, seed=1)
    gate = AdmissionGate(8, memory_budget=10**12, refresh_every=4)
    gate.watch({"default": s})
    before = gate.resident
    # Swap in a bigger structure behind the gate's back: the cached
    # measurement persists until refresh_every admissions have passed.
    gate._structures["default"] = StaticIRS(DATA * 2, seed=1)
    for _ in range(3):
        gate.admit(0, 0.0)
    assert gate.resident == before
    for _ in range(4):
        gate.admit(0, 0.0)
    assert gate.resident == 2 * before


# -- window controller -------------------------------------------------------


def test_controller_validates_bounds():
    with pytest.raises(ValueError):
        WindowController(min_window=-1.0)
    with pytest.raises(ValueError):
        WindowController(min_window=0.01, max_window=0.001)


def test_controller_interval_bounds_cadence():
    c = WindowController(interval=1.0)
    w0 = c.tick(0.0, arrival_rate=1e6, p99=None)
    # A tick inside the interval is a no-op even with a surge signal.
    assert c.tick(0.5, arrival_rate=1e6, p99=None) == w0
    assert c.adjustments <= 1


def test_surge_halves_window():
    c = WindowController(max_window=0.016, target_batch=64, interval=0.0)
    c.window = 0.016
    # At 1M req/s the ideal window is 64µs — far below half the current.
    w = c.tick(0.0, arrival_rate=1_000_000.0, p99=None)
    assert w == pytest.approx(0.008)
    assert c.adjustments == 1


def test_slow_traffic_grows_additively():
    c = WindowController(max_window=0.016, target_batch=64, step=0.001, interval=0.0)
    c.window = 0.002
    # At 100 req/s the ideal window (640ms) exceeds the current: add step.
    w = c.tick(0.0, arrival_rate=100.0, p99=None)
    assert w == pytest.approx(0.003)
    # Growth clamps at max_window.
    for i in range(1, 100):
        w = c.tick(float(i), arrival_rate=100.0, p99=None)
    assert w == pytest.approx(0.016)


def test_latency_guard_backs_off():
    c = WindowController(
        min_window=0.0, max_window=0.016, target_batch=64,
        p99_budget=0.050, interval=0.0,
    )
    c.window = 0.008
    # p99 over budget while the window gathers < target_batch: the window
    # itself is the latency, so it halves even though arrivals are slow
    # enough that the arrival rule alone would have grown it.
    w = c.tick(0.0, arrival_rate=100.0, p99=0.2)
    assert w == pytest.approx(0.004)


def test_latency_guard_ignored_when_batching_pays():
    c = WindowController(target_batch=64, p99_budget=0.050, interval=0.0)
    c.window = 0.001
    # Gathering >= target_batch: high p99 is load, not the window's fault.
    w = c.tick(0.0, arrival_rate=100_000.0, p99=0.2)
    assert w >= 0.0005  # the arrival rule may still adjust, never the guard
    assert c.window >= c.min_window


def test_window_clamps_to_min():
    c = WindowController(min_window=0.004, max_window=0.016, interval=0.0)
    c.window = 0.005
    for i in range(10):
        c.tick(float(i), arrival_rate=1e9, p99=None)
    assert c.window == pytest.approx(0.004)
