"""Tests for dataset/query generators and workload runners."""

from __future__ import annotations

import pytest

from repro import DynamicIRS, StaticIRS
from repro.workloads import (
    UpdateStream,
    duplicate_heavy,
    gaussian_mixture,
    integer_grid,
    mixed_selectivity_queries,
    run_mixed_workload,
    run_query_workload,
    selectivity_interval,
    selectivity_queries,
    uniform_points,
    zipf_gaps,
)
import random


class TestDatasets:
    @pytest.mark.parametrize(
        "factory",
        [uniform_points, gaussian_mixture, zipf_gaps, integer_grid, duplicate_heavy],
    )
    def test_size_and_determinism(self, factory):
        a = factory(500, seed=1)
        b = factory(500, seed=1)
        c = factory(500, seed=2)
        assert len(a) == 500
        assert a == b
        assert a != c

    def test_uniform_bounds(self):
        data = uniform_points(1000, lo=5.0, hi=6.0, seed=3)
        assert all(5.0 <= v <= 6.0 for v in data)

    def test_zipf_gaps_monotone(self):
        data = zipf_gaps(1000, seed=4)
        assert all(a < b for a, b in zip(data, data[1:]))

    def test_duplicate_heavy_has_duplicates(self):
        data = duplicate_heavy(1000, distinct=10, seed=5)
        assert len(set(data)) <= 10

    def test_integer_grid_is_integral(self):
        data = integer_grid(200, seed=6)
        assert all(v == int(v) for v in data)


class TestQueries:
    def test_selectivity_is_respected(self):
        data = sorted(uniform_points(10_000, seed=7))
        rng = random.Random(8)
        for selectivity in (0.01, 0.1, 0.5):
            lo, hi = selectivity_interval(data, selectivity, rng)
            k = sum(1 for v in data if lo <= v <= hi)
            assert abs(k - selectivity * len(data)) <= max(5, 0.01 * len(data))

    def test_selectivity_queries_deterministic(self):
        data = sorted(uniform_points(1000, seed=9))
        assert selectivity_queries(data, 0.1, 5, seed=10) == selectivity_queries(
            data, 0.1, 5, seed=10
        )

    def test_mixed_selectivities_cycle(self):
        data = sorted(uniform_points(1000, seed=11))
        queries = mixed_selectivity_queries(data, [0.01, 0.5], 6, seed=12)
        assert len(queries) == 6

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            selectivity_interval([], 0.1, random.Random(0))


class TestUpdateStream:
    def test_insert_only(self):
        stream = UpdateStream([], insert_fraction=1.0, seed=13)
        ops = stream.take(100)
        assert all(op == "insert" for op, _ in ops)
        assert stream.live_count == 100

    def test_deletes_target_live_values(self):
        stream = UpdateStream([0.5], insert_fraction=0.5, seed=14)
        live = {0.5}
        for op, value in stream.take(500):
            if op == "insert":
                live.add(value)
            else:
                assert value in live
                live.discard(value)

    def test_replayable_on_structure(self):
        stream = UpdateStream([], insert_fraction=0.6, seed=15)
        d = DynamicIRS(seed=16)
        for op, value in stream.take(1000):
            if op == "insert":
                d.insert(value)
            else:
                d.delete(value)
        assert len(d) == stream.live_count
        d.check_invariants()

    def test_hotspot_concentrates_inserts(self):
        stream = UpdateStream(
            [], insert_fraction=1.0, hotspot=(0.4, 0.41), hotspot_fraction=0.9, seed=17
        )
        values = [v for _op, v in stream.take(1000)]
        inside = sum(1 for v in values if 0.4 <= v <= 0.41)
        assert inside > 800

    def test_validation(self):
        with pytest.raises(ValueError):
            UpdateStream([], insert_fraction=1.5)


class TestRunners:
    def test_query_workload_counts(self):
        data = uniform_points(2000, seed=18)
        s = StaticIRS(data, seed=19)
        queries = selectivity_queries(sorted(data), 0.2, 10, seed=20)
        result = run_query_workload(s, queries, t=7, record_latencies=True)
        assert result.operations == 10
        assert result.samples == 70
        assert len(result.per_op_seconds) == 10
        assert result.throughput > 0

    def test_mixed_workload_applies_everything(self):
        d = DynamicIRS(uniform_points(500, seed=21), seed=22)
        stream = UpdateStream(d.values(), insert_fraction=0.5, seed=23)
        queries = [(0.1, 0.9), (0.3, 0.4)]
        result = run_mixed_workload(d, stream.take(200), queries, t=3, query_every=20)
        assert result.operations == 210
        d.check_invariants()

    def test_mixed_workload_rejects_unknown_ops(self):
        d = DynamicIRS([1.0], seed=24)
        with pytest.raises(ValueError):
            run_mixed_workload(d, [("upsert", 1.0)], [], t=1)


class TestWeightedStreams:
    """UpdateStream weight_range wiring through the runners."""

    def test_weighted_stream_shapes(self):
        stream = UpdateStream(
            [0.5], insert_fraction=0.7, seed=30, weight_range=(1.0, 4.0)
        )
        ops = stream.take(200)
        inserts = [op for op in ops if op[0] == "insert"]
        deletes = [op for op in ops if op[0] == "delete"]
        assert inserts and deletes
        assert all(len(op) == 3 and 1.0 <= op[2] <= 4.0 for op in inserts)
        assert all(len(op) == 2 for op in deletes)

    def test_weight_range_validation(self):
        with pytest.raises(ValueError):
            UpdateStream([], weight_range=(0.0, 1.0))
        with pytest.raises(ValueError):
            UpdateStream([], weight_range=(2.0, 1.0))

    def test_weighted_mixed_workload_and_ops(self):
        from repro import BatchOp, BatchQueryRunner, WeightedDynamicIRS

        initial = [float(i) for i in range(100)]
        stream = UpdateStream(
            initial, insert_fraction=0.6, seed=31, weight_range=(0.5, 2.0)
        )
        operations = stream.take(150)
        w = WeightedDynamicIRS(initial, seed=32)
        result = run_mixed_workload(w, operations, [(10.0, 80.0)], t=4)
        assert result.operations > 150
        w.check_invariants()
        # The same stream through the batch engine: weighted inserts become
        # BatchOp instances carrying the weight.
        from repro.workloads import as_mixed_ops

        ops = as_mixed_ops(operations, [(10.0, 80.0)], t=4, query_every=25)
        weighted_ops = [op for op in ops if isinstance(op, BatchOp)]
        assert weighted_ops and all(op.weight is not None for op in weighted_ops)
        w2 = WeightedDynamicIRS(initial, seed=32)
        mixed = BatchQueryRunner(w2).run_mixed(ops)
        assert mixed.stats.extra["updates"] == 150
        w2.check_invariants()
        assert w2.items() == w.items()
