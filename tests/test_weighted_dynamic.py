"""Tests for WeightedDynamicIRS (extension X2)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EmptyRangeError, InvalidQueryError, WeightedDynamicIRS
from repro.errors import InvalidWeightError, KeyNotFoundError
from repro.stats import chi_square_gof


def reference_weight(pairs, lo, hi):
    return sum(w for v, w in pairs if lo <= v <= hi)


class TestConstruction:
    def test_empty(self):
        w = WeightedDynamicIRS(seed=1)
        assert len(w) == 0
        assert w.range_weight(0.0, 1.0) == 0.0
        with pytest.raises(EmptyRangeError):
            w.sample(0.0, 1.0, 1)

    def test_default_unit_weights(self):
        w = WeightedDynamicIRS([3.0, 1.0, 2.0], seed=2)
        assert w.total_weight == pytest.approx(3.0)
        w.check_invariants()

    def test_bulk_build_sorted_pairing(self):
        w = WeightedDynamicIRS([3.0, 1.0], [30.0, 10.0], seed=3)
        assert w.items() == [(1.0, 10.0), (3.0, 30.0)]

    def test_invalid_weight_rejected(self):
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(InvalidWeightError):
                WeightedDynamicIRS([1.0], [bad], seed=4)
            with pytest.raises(InvalidWeightError):
                WeightedDynamicIRS(seed=5).insert(1.0, bad)


class TestUpdates:
    def test_insert_delete_roundtrip(self):
        w = WeightedDynamicIRS(seed=6)
        rng = random.Random(7)
        pairs = [(rng.uniform(0, 10), rng.uniform(0.1, 5)) for _ in range(2000)]
        for v, wt in pairs:
            w.insert(v, wt)
        w.check_invariants()
        assert len(w) == 2000
        assert w.total_weight == pytest.approx(sum(wt for _, wt in pairs), rel=1e-9)
        rng.shuffle(pairs)
        for v, wt in pairs[:1500]:
            assert w.delete(v) == pytest.approx(wt)
        w.check_invariants()
        assert len(w) == 500

    def test_delete_missing(self):
        w = WeightedDynamicIRS([1.0], [2.0], seed=8)
        with pytest.raises(KeyNotFoundError):
            w.delete(5.0)

    def test_range_weight_tracks_updates(self):
        w = WeightedDynamicIRS(seed=9)
        w.insert(1.0, 10.0)
        w.insert(2.0, 20.0)
        w.insert(3.0, 30.0)
        assert w.range_weight(1.5, 3.5) == pytest.approx(50.0)
        w.delete(2.0)
        assert w.range_weight(1.5, 3.5) == pytest.approx(30.0)

    def test_rebuild_cycles(self):
        w = WeightedDynamicIRS(seed=10)
        for i in range(4000):
            w.insert(float(i % 131), 1.0 + (i % 7))
        for i in range(3500):
            w.delete(float(i % 131))
        w.check_invariants()
        assert len(w) == 500


class TestQueries:
    def test_count_report_match_bruteforce(self):
        rng = random.Random(11)
        pairs = [(rng.uniform(0, 10), rng.uniform(0.1, 3)) for _ in range(1500)]
        w = WeightedDynamicIRS(*zip(*pairs), seed=12)
        for lo, hi in [(1.0, 2.5), (0.0, 10.0), (7.7, 7.9), (9.5, 20.0)]:
            expected = sorted((v, wt) for v, wt in pairs if lo <= v <= hi)
            assert w.count(lo, hi) == len(expected)
            assert sorted(w.report(lo, hi)) == expected
            assert w.range_weight(lo, hi) == pytest.approx(
                reference_weight(pairs, lo, hi), rel=1e-9
            )

    def test_invalid_queries(self):
        w = WeightedDynamicIRS([1.0], seed=13)
        with pytest.raises(InvalidQueryError):
            w.sample(2.0, 1.0, 1)
        with pytest.raises(InvalidQueryError):
            w.sample(0.0, 2.0, -1)

    def test_samples_in_range(self):
        rng = random.Random(14)
        pairs = [(rng.uniform(0, 1), rng.uniform(0.1, 2)) for _ in range(3000)]
        w = WeightedDynamicIRS(*zip(*pairs), seed=15)
        for value in w.sample(0.2, 0.7, 500):
            assert 0.2 <= value <= 0.7


class TestDistribution:
    def _check(self, values, weights, lo, hi, seed, draws=30_000):
        w = WeightedDynamicIRS(values, weights, seed=seed)
        samples = w.sample(lo, hi, draws)
        in_range = [(v, wt) for v, wt in zip(values, weights) if lo <= v <= hi]
        index = {v: i for i, (v, _wt) in enumerate(in_range)}
        observed = [0] * len(in_range)
        for s in samples:
            observed[index[s]] += 1
        _stat, p = chi_square_gof(observed, [wt for _v, wt in in_range])
        assert p > 1e-4

    def test_proportional_small(self):
        self._check(
            [float(i) for i in range(12)],
            [float(i + 1) for i in range(12)],
            1.0,
            10.0,
            seed=16,
        )

    def test_proportional_across_many_chunks(self):
        n = 400
        self._check(
            [float(i) for i in range(n)],
            [1.0 + (i % 5) for i in range(n)],
            10.0,
            390.0,
            seed=17,
            draws=50_000,
        )

    def test_proportional_after_updates(self):
        n = 200
        w = WeightedDynamicIRS(
            [float(i) for i in range(n)], [1.0] * n, seed=18
        )
        for i in range(0, n, 2):
            w.delete(float(i))
            w.insert(float(i), 3.0)  # re-insert even values at triple weight
        samples = w.sample(0.0, float(n), 40_000)
        even = sum(1 for s in samples if s % 2 == 0)
        _stat, p = chi_square_gof([even, len(samples) - even], [3.0, 1.0])
        assert p > 1e-4
        w.check_invariants()


@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 30), st.floats(min_value=0.1, max_value=10.0)),
        min_size=1,
        max_size=80,
    ),
    lo=st.integers(0, 30),
    width=st.integers(0, 30),
)
@settings(max_examples=80, deadline=None)
def test_property_counts_and_membership(pairs, lo, width):
    hi = float(lo + width)
    values = [float(v) for v, _ in pairs]
    weights = [wt for _, wt in pairs]
    w = WeightedDynamicIRS(values, weights, seed=19)
    expected = sorted(v for v in values if lo <= v <= hi)
    assert w.count(lo, hi) == len(expected)
    if expected:
        assert set(w.sample(lo, hi, 8)) <= set(expected)
    else:
        with pytest.raises(EmptyRangeError):
            w.sample(lo, hi, 1)
