"""Tests for WeightedDynamicIRS (extension X2)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EmptyRangeError, InvalidQueryError, WeightedDynamicIRS
from repro.errors import InvalidWeightError, KeyNotFoundError
from repro.stats import chi_square_gof


def reference_weight(pairs, lo, hi):
    return sum(w for v, w in pairs if lo <= v <= hi)


class TestConstruction:
    def test_empty(self):
        w = WeightedDynamicIRS(seed=1)
        assert len(w) == 0
        assert w.range_weight(0.0, 1.0) == 0.0
        with pytest.raises(EmptyRangeError):
            w.sample(0.0, 1.0, 1)

    def test_default_unit_weights(self):
        w = WeightedDynamicIRS([3.0, 1.0, 2.0], seed=2)
        assert w.total_weight == pytest.approx(3.0)
        w.check_invariants()

    def test_bulk_build_sorted_pairing(self):
        w = WeightedDynamicIRS([3.0, 1.0], [30.0, 10.0], seed=3)
        assert w.items() == [(1.0, 10.0), (3.0, 30.0)]

    def test_invalid_weight_rejected(self):
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(InvalidWeightError):
                WeightedDynamicIRS([1.0], [bad], seed=4)
            with pytest.raises(InvalidWeightError):
                WeightedDynamicIRS(seed=5).insert(1.0, bad)


class TestUpdates:
    def test_insert_delete_roundtrip(self):
        w = WeightedDynamicIRS(seed=6)
        rng = random.Random(7)
        pairs = [(rng.uniform(0, 10), rng.uniform(0.1, 5)) for _ in range(2000)]
        for v, wt in pairs:
            w.insert(v, wt)
        w.check_invariants()
        assert len(w) == 2000
        assert w.total_weight == pytest.approx(sum(wt for _, wt in pairs), rel=1e-9)
        rng.shuffle(pairs)
        for v, wt in pairs[:1500]:
            assert w.delete(v) == pytest.approx(wt)
        w.check_invariants()
        assert len(w) == 500

    def test_delete_missing(self):
        w = WeightedDynamicIRS([1.0], [2.0], seed=8)
        with pytest.raises(KeyNotFoundError):
            w.delete(5.0)

    def test_range_weight_tracks_updates(self):
        w = WeightedDynamicIRS(seed=9)
        w.insert(1.0, 10.0)
        w.insert(2.0, 20.0)
        w.insert(3.0, 30.0)
        assert w.range_weight(1.5, 3.5) == pytest.approx(50.0)
        w.delete(2.0)
        assert w.range_weight(1.5, 3.5) == pytest.approx(30.0)

    def test_rebuild_cycles(self):
        w = WeightedDynamicIRS(seed=10)
        for i in range(4000):
            w.insert(float(i % 131), 1.0 + (i % 7))
        for i in range(3500):
            w.delete(float(i % 131))
        w.check_invariants()
        assert len(w) == 500


class TestQueries:
    def test_count_report_match_bruteforce(self):
        rng = random.Random(11)
        pairs = [(rng.uniform(0, 10), rng.uniform(0.1, 3)) for _ in range(1500)]
        w = WeightedDynamicIRS(*zip(*pairs), seed=12)
        for lo, hi in [(1.0, 2.5), (0.0, 10.0), (7.7, 7.9), (9.5, 20.0)]:
            expected = sorted((v, wt) for v, wt in pairs if lo <= v <= hi)
            assert w.count(lo, hi) == len(expected)
            assert sorted(w.report(lo, hi)) == expected
            assert w.range_weight(lo, hi) == pytest.approx(
                reference_weight(pairs, lo, hi), rel=1e-9
            )

    def test_invalid_queries(self):
        w = WeightedDynamicIRS([1.0], seed=13)
        with pytest.raises(InvalidQueryError):
            w.sample(2.0, 1.0, 1)
        with pytest.raises(InvalidQueryError):
            w.sample(0.0, 2.0, -1)

    def test_samples_in_range(self):
        rng = random.Random(14)
        pairs = [(rng.uniform(0, 1), rng.uniform(0.1, 2)) for _ in range(3000)]
        w = WeightedDynamicIRS(*zip(*pairs), seed=15)
        for value in w.sample(0.2, 0.7, 500):
            assert 0.2 <= value <= 0.7


class TestDistribution:
    def _check(self, values, weights, lo, hi, seed, draws=30_000):
        w = WeightedDynamicIRS(values, weights, seed=seed)
        samples = w.sample(lo, hi, draws)
        in_range = [(v, wt) for v, wt in zip(values, weights) if lo <= v <= hi]
        index = {v: i for i, (v, _wt) in enumerate(in_range)}
        observed = [0] * len(in_range)
        for s in samples:
            observed[index[s]] += 1
        _stat, p = chi_square_gof(observed, [wt for _v, wt in in_range])
        assert p > 1e-4

    def test_proportional_small(self):
        self._check(
            [float(i) for i in range(12)],
            [float(i + 1) for i in range(12)],
            1.0,
            10.0,
            seed=16,
        )

    def test_proportional_across_many_chunks(self):
        n = 400
        self._check(
            [float(i) for i in range(n)],
            [1.0 + (i % 5) for i in range(n)],
            10.0,
            390.0,
            seed=17,
            draws=50_000,
        )

    def test_proportional_after_updates(self):
        n = 200
        w = WeightedDynamicIRS(
            [float(i) for i in range(n)], [1.0] * n, seed=18
        )
        for i in range(0, n, 2):
            w.delete(float(i))
            w.insert(float(i), 3.0)  # re-insert even values at triple weight
        samples = w.sample(0.0, float(n), 40_000)
        even = sum(1 for s in samples if s % 2 == 0)
        _stat, p = chi_square_gof([even, len(samples) - even], [3.0, 1.0])
        assert p > 1e-4
        w.check_invariants()


@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 30), st.floats(min_value=0.1, max_value=10.0)),
        min_size=1,
        max_size=80,
    ),
    lo=st.integers(0, 30),
    width=st.integers(0, 30),
)
@settings(max_examples=80, deadline=None)
def test_property_counts_and_membership(pairs, lo, width):
    hi = float(lo + width)
    values = [float(v) for v, _ in pairs]
    weights = [wt for _, wt in pairs]
    w = WeightedDynamicIRS(values, weights, seed=19)
    expected = sorted(v for v in values if lo <= v <= hi)
    assert w.count(lo, hi) == len(expected)
    if expected:
        assert set(w.sample(lo, hi, 8)) <= set(expected)
    else:
        with pytest.raises(EmptyRangeError):
            w.sample(lo, hi, 1)


class TestUpdateWeight:
    def test_basic_reweight_and_return(self):
        w = WeightedDynamicIRS([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], seed=40)
        old = w.update_weight(2.0, 9.0)
        assert old == 2.0
        assert w.total_weight == pytest.approx(13.0)
        assert w.range_weight(2.0, 2.0) == pytest.approx(9.0)
        w.check_invariants()

    def test_missing_value_raises(self):
        w = WeightedDynamicIRS([1.0], seed=41)
        with pytest.raises(KeyNotFoundError):
            w.update_weight(2.0, 1.0)

    def test_invalid_weight_rejected(self):
        w = WeightedDynamicIRS([1.0], seed=42)
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(InvalidWeightError):
                w.update_weight(1.0, bad)
        assert w.total_weight == pytest.approx(1.0)

    def test_reweight_shifts_sampling_mass(self):
        values = [float(i) for i in range(200)]
        w = WeightedDynamicIRS(values, seed=43)
        w.update_weight(50.0, 10_000.0)
        samples = w.sample_bulk(0.0, 199.0, 4000)
        hot = (samples == 50.0).sum()
        # 50.0 owns ~98% of the mass after the reweight.
        assert hot > 3500

    def test_reweight_visible_to_bulk_after_flat_cache(self):
        values = [float(i) for i in range(500)]
        w = WeightedDynamicIRS(values, seed=44)
        w.sample_bulk(0.0, 499.0, 5000)  # builds the flat global table
        w.update_weight(250.0, 50_000.0)  # must invalidate it
        samples = w.sample_bulk(0.0, 499.0, 4000)
        assert (samples == 250.0).sum() > 3500


class TestPeekProbes:
    RANGES = [(0.0, 10.0), (5.0, 5.0), (-3.0, 0.5), (8.0, 100.0), (11.0, 12.0)]

    def test_peek_matches_scalar(self):
        values = [float(i % 11) for i in range(300)]
        weights = [1.0 + (i % 5) for i in range(300)]
        w = WeightedDynamicIRS(values, weights, seed=50)
        counts = w.peek_counts(self.RANGES)
        masses = w.peek_weights(self.RANGES)
        for (lo, hi), k, m in zip(self.RANGES, counts, masses):
            assert int(k) == w.count(lo, hi)
            assert float(m) == pytest.approx(w.range_weight(lo, hi), abs=1e-9)

    def test_peek_after_updates_with_pending_deltas(self):
        values = [float(i) for i in range(400)]
        w = WeightedDynamicIRS(values, seed=51)
        w.range_weight(0.0, 400.0)  # warm the prefix caches
        w.insert(100.5, 7.0)
        w.update_weight(200.0, 3.0)
        w.delete(300.0)
        counts = w.peek_counts([(0.0, 400.0), (100.0, 101.0), (199.0, 301.0)])
        masses = w.peek_weights([(0.0, 400.0), (100.0, 101.0), (199.0, 301.0)])
        for (lo, hi), k, m in zip(
            [(0.0, 400.0), (100.0, 101.0), (199.0, 301.0)], counts, masses
        ):
            assert int(k) == w.count(lo, hi)
            assert float(m) == pytest.approx(w.range_weight(lo, hi), abs=1e-9)

    def test_peek_rejects_bad_bounds(self):
        w = WeightedDynamicIRS([1.0], seed=52)
        with pytest.raises(InvalidQueryError):
            w.peek_counts([(2.0, 1.0)])
        with pytest.raises(InvalidQueryError):
            w.peek_weights([(float("nan"), 1.0)])


class TestSampleBulkMany:
    def test_alignment_and_membership(self):
        values = [float(i) for i in range(100)]
        w = WeightedDynamicIRS(values, seed=60)
        queries = [(0.0, 9.0, 5), (50.0, 59.0, 0), (90.0, 99.0, 3)]
        results = w.sample_bulk_many(queries)
        assert [len(r) for r in results] == [5, 0, 3]
        assert all(0.0 <= v <= 9.0 for v in results[0])
        assert all(90.0 <= v <= 99.0 for v in results[2])

    def test_seeded_queries_reproduce(self):
        values = [float(i) for i in range(500)]
        weights = [1.0 + (i % 3) for i in range(500)]
        a = WeightedDynamicIRS(values, weights, seed=61)
        b = WeightedDynamicIRS(values, weights, seed=999)  # different stream
        queries = [(0.0, 499.0, 64), (100.0, 400.0, 32)]
        seeds = [7, 8]
        ra = a.sample_bulk_many(queries, seeds=seeds)
        rb = b.sample_bulk_many(queries, seeds=seeds)
        for x, y in zip(ra, rb):
            assert list(x) == list(y)  # pure function of seed + contents
        # and identical to lone seeded sample_bulk calls
        for (lo, hi, t), seed, got in zip(queries, seeds, ra):
            assert list(a.sample_bulk(lo, hi, t, seed=seed)) == list(got)

    def test_seeds_must_align(self):
        w = WeightedDynamicIRS([1.0], seed=62)
        with pytest.raises(InvalidQueryError):
            w.sample_bulk_many([(0.0, 1.0, 1)], seeds=[1, 2])


class TestUniformityUnderChurn:
    def test_weighted_chi_square_after_interleaved_updates(self):
        """Proportionality survives interleaved insert/delete/update_weight."""
        rng = random.Random(70)
        values = [float(i) for i in range(120)]
        weights = [1.0 + (i % 4) for i in range(120)]
        w = WeightedDynamicIRS(values, weights, seed=71)
        live = dict(zip(values, weights))
        next_value = 200.0
        for step in range(600):
            op = rng.random()
            if op < 0.4:
                weight = 0.5 + 4.0 * rng.random()
                w.insert(next_value, weight)
                live[next_value] = weight
                next_value += 1.0
            elif op < 0.7 and len(live) > 40:
                victim = rng.choice(sorted(live))
                w.delete(victim)
                del live[victim]
            else:
                target = rng.choice(sorted(live))
                weight = 0.5 + 4.0 * rng.random()
                w.update_weight(target, weight)
                live[target] = weight
            if step % 97 == 0:
                w.sample_bulk(0.0, 1000.0, 64)  # interleave reads with churn
        w.check_invariants()
        population = sorted(live)
        lo, hi = population[5], population[-5]
        in_range = [v for v in population if lo <= v <= hi]
        expected = [live[v] for v in in_range]
        from collections import Counter

        from statgates import gof_gate

        def bulk_counts(attempt):
            got = Counter(w.sample_bulk(lo, hi, 60_000).tolist())
            return [got.get(v, 0) for v in in_range]

        gof_gate(bulk_counts, expected, label="weighted bulk sampling after churn")

        # The scalar path must pass the same gate on the same structure.
        def scalar_counts(attempt):
            got = Counter(w.sample(lo, hi, 20_000))
            return [got.get(v, 0) for v in in_range]

        gof_gate(
            scalar_counts, expected, label="weighted scalar sampling after churn"
        )


class TestFloatRobustness:
    """Extreme-weight cases: prefix-diff cancellation and boundary clamps."""

    def test_huge_weight_does_not_zero_out_sibling_mass(self):
        # A 1e18 weight absorbs the others in a cumulative prefix; the
        # boundary-run masses must come from direct summation so this
        # positive-weight range neither reports 0 mass nor raises.
        w = WeightedDynamicIRS([float(i) for i in range(10)], [1e18] + [1.0] * 9,
                               seed=90)
        assert w.count(5.0, 8.0) == 4
        assert w.range_weight(5.0, 8.0) == 4.0
        assert float(w.peek_weights([(5.0, 8.0)])[0]) == 4.0
        assert all(5.0 <= v <= 8.0 for v in w.sample(5.0, 8.0, 50))
        assert all(5.0 <= v <= 8.0 for v in w.sample_bulk(5.0, 8.0, 500))

    def test_boundary_draws_clamped_into_query_run(self):
        # Round-off between the three-way mass split and the cumulative
        # tables must never surface a sample outside [lo, hi].
        w = WeightedDynamicIRS([float(i) for i in range(10)], [1e16] + [3.0] * 9,
                               seed=91)
        assert all(1.0 <= v <= 4.0 for v in w.sample(1.0, 4.0, 5000))
        assert all(1.0 <= v <= 4.0 for v in w.sample_bulk(1.0, 4.0, 20000))
        # Multi-chunk: the huge weight sits before the query's window.
        vals = [float(i) for i in range(2000)]
        w2 = WeightedDynamicIRS(vals, [1e16] + [1.0] * 1999, seed=92)
        assert w2.range_weight(100.0, 1800.0) > 0.0
        assert all(100.0 <= v <= 1800.0 for v in w2.sample(100.0, 1800.0, 2000))
        assert all(
            100.0 <= v <= 1800.0 for v in w2.sample_bulk(100.0, 1800.0, 50000)
        )
