"""Hypothesis stateful (model-based) test for DynamicIRS.

Drives the structure with an arbitrary interleaving of inserts, deletes,
counts, reports and samples, mirroring every operation on a plain sorted
list.  After every step the observable behavior must match the model, and
the structure's own invariant checker must pass at teardown.
"""

from __future__ import annotations

import bisect

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro import DynamicIRS

_VALUES = st.integers(0, 200).map(float)


class DynamicIRSMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**16))
    def setup(self, seed):
        self.structure = DynamicIRS(seed=seed)
        self.model: list[float] = []
        self.steps = 0

    @rule(value=_VALUES)
    def insert(self, value):
        self.structure.insert(value)
        bisect.insort(self.model, value)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        value = data.draw(st.sampled_from(self.model))
        self.structure.delete(value)
        self.model.remove(value)

    @rule(batch=st.lists(_VALUES, max_size=40))
    def insert_bulk(self, batch):
        self.structure.insert_bulk(batch)
        for value in batch:
            bisect.insort(self.model, value)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_bulk_existing(self, data):
        # Draw a multiset-consistent batch of currently live values.
        batch = data.draw(
            st.lists(st.sampled_from(self.model), min_size=1, max_size=20)
        )
        from collections import Counter

        available = Counter(self.model)
        take = []
        for value in batch:
            if available[value] > 0:
                available[value] -= 1
                take.append(value)
        self.structure.delete_bulk(take)
        for value in take:
            self.model.remove(value)

    @rule(lo=_VALUES, width=st.integers(0, 200))
    def count_matches(self, lo, width):
        hi = lo + width
        expected = bisect.bisect_right(self.model, hi) - bisect.bisect_left(
            self.model, lo
        )
        assert self.structure.count(lo, hi) == expected

    @rule(lo=_VALUES, width=st.integers(0, 200))
    def report_matches(self, lo, width):
        hi = lo + width
        expected = self.model[
            bisect.bisect_left(self.model, lo) : bisect.bisect_right(self.model, hi)
        ]
        assert self.structure.report(lo, hi) == expected

    @rule(lo=_VALUES, width=st.integers(0, 200), t=st.integers(1, 8))
    def samples_are_in_range_members(self, lo, width, t):
        hi = lo + width
        a = bisect.bisect_left(self.model, lo)
        b = bisect.bisect_right(self.model, hi)
        if a == b:
            return
        members = set(self.model[a:b])
        for sample in self.structure.sample(lo, hi, t):
            assert sample in members

    @invariant()
    def sizes_agree(self):
        if hasattr(self, "model"):
            assert len(self.structure) == len(self.model)

    def teardown(self):
        if hasattr(self, "structure"):
            self.structure.check_invariants()
            assert self.structure.values() == self.model


TestDynamicIRSStateful = DynamicIRSMachine.TestCase
TestDynamicIRSStateful.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)


class WindowedIRSMachine(RuleBasedStateMachine):
    """Model-based window-expiry rules for the uniform :class:`WindowedIRS`.

    The model is simply the list of the last ``W`` arrivals.  Interleaved
    advance/insert/sample/count/report must never surface an expired key:
    reads flush pending expiry, so the structure observes exactly the
    model's window regardless of how expiry batching interleaves with
    arrivals.
    """

    @initialize(
        seed=st.integers(0, 2**16),
        window=st.integers(1, 24),
        expiry_batch=st.integers(1, 8),
    )
    def setup(self, seed, window, expiry_batch):
        from repro import WindowedIRS

        self.window = window
        self.structure = WindowedIRS(
            window=window, seed=seed, expiry_batch=expiry_batch
        )
        self.model: list[float] = []  # the live window, oldest first
        self.arrivals = 0

    def _arrive(self, batch):
        self.arrivals += len(batch)
        self.model.extend(batch)
        del self.model[: max(0, len(self.model) - self.window)]

    @rule(value=_VALUES)
    def insert(self, value):
        self.structure.insert(value)
        self._arrive([value])

    @rule(batch=st.lists(_VALUES, max_size=40))
    def advance(self, batch):
        self.structure.advance(batch)
        self._arrive(batch)

    @rule(lo=_VALUES, width=st.integers(0, 200))
    def count_sees_exactly_the_window(self, lo, width):
        hi = lo + width
        expected = sum(1 for v in self.model if lo <= v <= hi)
        assert self.structure.count(lo, hi) == expected

    @rule(lo=_VALUES, width=st.integers(0, 200))
    def report_sees_exactly_the_window(self, lo, width):
        hi = lo + width
        expected = sorted(v for v in self.model if lo <= v <= hi)
        assert self.structure.report(lo, hi) == expected

    @rule(lo=_VALUES, width=st.integers(0, 200), t=st.integers(1, 8))
    def samples_never_surface_expired_keys(self, lo, width, t):
        hi = lo + width
        live = set(v for v in self.model if lo <= v <= hi)
        if not live:
            return
        for sample in self.structure.sample(lo, hi, t):
            assert sample in live

    @invariant()
    def live_size_is_min_window_arrivals(self):
        if hasattr(self, "model"):
            assert len(self.structure) == len(self.model)
            assert len(self.structure) == min(self.arrivals, self.window)
            assert self.structure.arrivals == self.arrivals

    def teardown(self):
        if hasattr(self, "structure"):
            self.structure.check_invariants()
            assert self.structure.live() == self.model


TestWindowedIRSStateful = WindowedIRSMachine.TestCase
TestWindowedIRSStateful.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
