"""Stress and pathological-input tests across the structures.

These target the inputs most likely to break chunked/indexed designs:
all-equal multisets (every boundary search ties), adversarial hot-spot
updates (every split lands in one PMA region), huge value magnitudes, and
alternating build/teardown cycles.
"""

from __future__ import annotations

import random

import pytest

from repro import DynamicIRS, ExternalIRS, StaticIRS
from repro.stats import uniformity_test
from repro.workloads import UpdateStream


class TestAllEqualValues:
    def test_static(self):
        s = StaticIRS([7.0] * 5000, seed=1)
        assert s.count(7.0, 7.0) == 5000
        assert s.sample(7.0, 7.0, 10) == [7.0] * 10
        assert s.count(6.9, 6.99) == 0

    def test_dynamic_build_and_query(self):
        d = DynamicIRS([7.0] * 5000, seed=2)
        d.check_invariants()
        assert d.count(7.0, 7.0) == 5000
        assert d.sample(0.0, 10.0, 5) == [7.0] * 5

    def test_dynamic_delete_through_equal_chunks(self):
        d = DynamicIRS([7.0] * 2000, seed=3)
        for _ in range(1500):
            d.delete(7.0)
        assert len(d) == 500
        d.check_invariants()

    def test_dynamic_insert_equal_everywhere(self):
        d = DynamicIRS(seed=4)
        for _ in range(3000):
            d.insert(1.0)
        d.check_invariants()
        assert d.count(1.0, 1.0) == 3000

    def test_external(self):
        e = ExternalIRS([7.0] * 4096, block_size=64, seed=5)
        assert e.count(7.0, 7.0) == 4096
        assert e.sample(0.0, 10.0, 100) == [7.0] * 100


class TestExtremeValues:
    def test_huge_and_tiny_magnitudes(self):
        values = [1e-300, -1e300, 0.0, 1e300, -1e-300, 42.0]
        d = DynamicIRS(values, seed=6)
        assert d.count(-1e301, 1e301) == 6
        assert d.count(0.0, 1e299) == 3  # 0.0, 1e-300, 42.0

    def test_negative_ranges(self):
        s = StaticIRS([-5.0, -3.0, -1.0], seed=7)
        assert s.report(-4.0, 0.0) == [-3.0, -1.0]
        assert s.sample(-5.0, -3.0, 4).count(-1.0) == 0

    def test_infinity_query_bounds(self):
        d = DynamicIRS([1.0, 2.0, 3.0], seed=8)
        assert d.count(float("-inf"), float("inf")) == 3
        assert len(d.sample(float("-inf"), float("inf"), 5)) == 5


class TestAdversarialChurn:
    def test_hotspot_stream_keeps_uniformity(self):
        d = DynamicIRS([float(i) / 1000 for i in range(1000)], seed=9)
        stream = UpdateStream(
            d.values(),
            insert_fraction=0.7,
            hotspot=(0.5, 0.5001),
            hotspot_fraction=0.95,
            seed=10,
        )
        for op, value in stream.take(4000):
            if op == "insert":
                d.insert(value)
            else:
                d.delete(value)
        d.check_invariants()
        population = d.report(0.4, 0.6)
        samples = d.sample(0.4, 0.6, 15_000)
        _stat, p = uniformity_test(samples, population)
        assert p > 1e-4

    def test_sawtooth_grow_shrink_cycles(self):
        d = DynamicIRS(seed=11)
        rng = random.Random(12)
        live: list[float] = []
        for cycle in range(4):
            for _ in range(1200):
                v = rng.random()
                d.insert(v)
                live.append(v)
            rng.shuffle(live)
            for _ in range(1100):
                d.delete(live.pop())
            d.check_invariants()
        assert len(d) == len(live)
        assert d.values() == sorted(live)

    def test_ascending_then_descending_inserts(self):
        d = DynamicIRS(seed=13)
        for i in range(1500):
            d.insert(float(i))
        for i in range(1500, 3000):
            d.insert(float(4500 - i))
        d.check_invariants()
        assert len(d) == 3000

    def test_delete_always_minimum(self):
        values = [float(i) for i in range(2000)]
        d = DynamicIRS(values, seed=14)
        for v in values[:1900]:
            d.delete(v)
        d.check_invariants()
        assert d.values() == values[1900:]

    def test_many_small_queries_after_churn(self):
        d = DynamicIRS([random.Random(15).uniform(0, 1) for _ in range(5000)], seed=16)
        rng = random.Random(17)
        for _ in range(2000):
            d.insert(rng.random())
            d.delete(d.sample(0.0, 1.0, 1)[0])
        for _ in range(100):
            lo = rng.uniform(0, 0.99)
            hi = lo + 0.01
            k = d.count(lo, hi)
            if k:
                assert all(lo <= v <= hi for v in d.sample(lo, hi, 3))


class TestQueryBoundaryGaps:
    """Queries that fall entirely between stored values."""

    def test_gap_between_chunks(self):
        d = DynamicIRS([float(i) * 10 for i in range(500)], seed=18)
        assert d.count(11.0, 19.0) == 0
        with pytest.raises(Exception):
            d.sample(11.0, 19.0, 1)

    def test_before_and_after_everything(self):
        d = DynamicIRS([10.0, 20.0], seed=19)
        assert d.count(-5.0, 5.0) == 0
        assert d.count(25.0, 35.0) == 0
