"""Integration: exact uniformity for every sampler on every workload shape.

This is the statistical acceptance gate for the whole library — each
(structure, dataset) pair is driven through the same goodness-of-fit check.
Seeds are fixed; thresholds are generous (an honest sampler lands far above
them, a biased one falls orders of magnitude below).
"""

from __future__ import annotations

import pytest
from statgates import mid_range, uniformity_gate

from repro import DynamicIRS, ExternalIRS, ShardedIRS, StaticIRS
from repro.baselines import (
    EMPerSample,
    EMReportSample,
    RejectionGlobalSampler,
    ReportThenSample,
    TreeWalkSampler,
)
from repro.workloads import duplicate_heavy, gaussian_mixture, zipf_gaps

DATASETS = {
    "clustered": lambda: gaussian_mixture(400, clusters=5, seed=31),
    "zipf": lambda: zipf_gaps(400, alpha=1.5, seed=32),
    "duplicates": lambda: duplicate_heavy(400, distinct=25, seed=33),
}

RAM_FACTORIES = {
    "static": lambda data: StaticIRS(data, seed=41),
    "dynamic": lambda data: DynamicIRS(data, seed=42),
    "sharded": lambda data: ShardedIRS(data, num_shards=4, seed=49),
    "report": lambda data: ReportThenSample(data, seed=43),
    "treewalk": lambda data: TreeWalkSampler(data, seed=44),
    "rejection": lambda data: RejectionGlobalSampler(data, seed=45),
}

EM_FACTORIES = {
    "external": lambda data: ExternalIRS(data, block_size=32, seed=46),
    "em-report": lambda data: EMReportSample(data, block_size=32, seed=47),
    "em-persample": lambda data: EMPerSample(data, block_size=32, seed=48),
}


@pytest.mark.parametrize("dataset_name", DATASETS)
@pytest.mark.parametrize("sampler_name", list(RAM_FACTORIES) + list(EM_FACTORIES))
def test_uniform_over_every_workload(sampler_name, dataset_name):
    data = DATASETS[dataset_name]()
    factory = {**RAM_FACTORIES, **EM_FACTORIES}[sampler_name]
    sampler = factory(data)
    lo, hi = mid_range(data)
    population = [v for v in data if lo <= v <= hi]

    def draw(attempt):
        samples = sampler.sample(lo, hi, 12_000)
        assert len(samples) == 12_000
        return samples

    uniformity_gate(
        draw, population, label=f"{sampler_name} on {dataset_name}"
    )


def test_dynamic_stays_uniform_under_interleaved_updates():
    data = gaussian_mixture(600, clusters=4, seed=51)
    d = DynamicIRS(data, seed=52)
    for i, v in enumerate(sorted(data)[::3]):
        d.delete(v)
        d.insert(v + 1e-9 * (i + 1))
    lo, hi = mid_range(d.values())
    population = [v for v in d.values() if lo <= v <= hi]
    uniformity_gate(
        lambda attempt: d.sample(lo, hi, 12_000),
        population,
        label="dynamic after interleaved updates",
    )
