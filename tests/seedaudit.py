"""Fingerprint every sampler kind × sampling path under a fixed root seed.

Run as a script (``python tests/seedaudit.py``) this prints one JSON dict
mapping ``"<kind>/<path>"`` to a SHA-256 fingerprint of the drawn values.
``test_seed_determinism.py`` runs it twice in *fresh processes* and asserts
every entry is byte-identical — the audit that no sampling path smuggles in
process-local state (hash randomization, id()-keyed dicts, global RNGs).
"""

from __future__ import annotations

import hashlib
import json

ROOT_SEED = 123_456_789
DATA = [float((i * 53) % 401) for i in range(400)]
WEIGHTS = [1.0 + (i % 5) for i in range(400)]
STRATA = [(0.0, 99.0), (100.0, 299.0), (300.0, 400.0)]
LO, HI, T = 20.0, 380.0, 64


def _fingerprint(values) -> str:
    payload = json.dumps(values, separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()


def _floats(block) -> list[float]:
    return [float(x) for x in block]


def build_factories():
    from repro import (
        DynamicIRS,
        ExternalIRS,
        ShardedIRS,
        StaticIRS,
        WeightedDynamicIRS,
        WeightedStaticIRS,
        WindowedIRS,
    )

    return {
        "static": lambda: StaticIRS(DATA, seed=ROOT_SEED),
        "dynamic": lambda: DynamicIRS(DATA, seed=ROOT_SEED),
        "external": lambda: ExternalIRS(DATA, block_size=32, seed=ROOT_SEED),
        "weighted": lambda: WeightedStaticIRS(DATA, WEIGHTS, seed=ROOT_SEED),
        "weighted-dynamic": lambda: WeightedDynamicIRS(
            DATA, WEIGHTS, seed=ROOT_SEED
        ),
        "sharded": lambda: ShardedIRS(DATA, num_shards=4, seed=ROOT_SEED),
        "windowed": lambda: WindowedIRS(DATA, window=300, seed=ROOT_SEED),
        "windowed-decay": lambda: WindowedIRS(
            DATA, window=300, seed=ROOT_SEED, decay=0.99
        ),
    }


def direct_fingerprints() -> dict[str, str]:
    from repro import sample_stratified, sample_without_replacement_bulk
    from repro.rng import derive_seed

    out: dict[str, str] = {}
    for kind, factory in build_factories().items():
        sampler = factory()
        # Scalar path: the structure's own seeded RNG, fixed call sequence.
        out[f"{kind}/scalar"] = _fingerprint(
            [_floats(sampler.sample(LO, HI, 8)) for _ in range(4)]
        )
        # Seed-addressable bulk path.
        out[f"{kind}/bulk"] = _fingerprint(
            _floats(sampler.sample_bulk(LO, HI, T, seed=derive_seed(ROOT_SEED, 1)))
        )
        # Stratified (every structure has a count-based share probe).
        out[f"{kind}/stratified"] = _fingerprint(
            [
                _floats(block)
                for block in sample_stratified(
                    sampler, STRATA, T, seed=derive_seed(ROOT_SEED, 2)
                )
            ]
        )
        # Without replacement: rank-addressable structures only.
        if kind in ("static", "dynamic", "sharded", "windowed"):
            out[f"{kind}/without-replacement"] = _fingerprint(
                _floats(
                    sample_without_replacement_bulk(
                        sampler, LO, HI, T, seed=derive_seed(ROOT_SEED, 3)
                    )
                )
            )
        close = getattr(sampler, "close", None)
        if close is not None:
            close()
    return out


def served_fingerprints() -> dict[str, str]:
    import asyncio

    from repro.serve import ReproServer, ServeClient

    async def scenario() -> dict[str, str]:
        structures = {kind: factory() for kind, factory in build_factories().items()}
        out: dict[str, str] = {}
        async with ReproServer(structures, seed=ROOT_SEED) as server:
            client = ServeClient(server)
            for kind in structures:
                replies = [
                    await client.sample(LO, HI, T, structure=kind, seed=777),
                    await client.sample_stratified(
                        [list(s) for s in STRATA], T, structure=kind, seed=778
                    ),
                    await client.estimate(
                        LO, HI, target=30.0, batch=64, structure=kind, seed=779
                    ),
                ]
                if kind in ("static", "dynamic", "sharded", "windowed"):
                    replies.append(
                        await client.sample_without_replacement(
                            LO, HI, T, structure=kind, seed=780
                        )
                    )
                out[f"{kind}/served"] = _fingerprint(replies)
        return out

    return asyncio.run(scenario())


def main() -> None:
    fingerprints = direct_fingerprints()
    fingerprints.update(served_fingerprints())
    print(json.dumps(fingerprints, sort_keys=True))


if __name__ == "__main__":
    main()
