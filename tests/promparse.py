"""A strict Prometheus text-exposition (v0.0.4) parser for tests.

The point is to be *unforgiving*: a scraper would tolerate most of what
this module rejects, so any drift in the renderer (missing HELP/TYPE,
unescaped label values, non-cumulative buckets, a histogram without its
``+Inf`` bound) fails a test instead of silently producing a scrape that
merely looks right.

``parse(text)`` returns ``{family_name: Family}`` and raises
``PromParseError`` on any violation of:

* the overall shape — trailing newline, ``# HELP`` then ``# TYPE`` then
  samples for every family, no samples before their family header;
* lexical rules — metric/label name charsets, label-value escaping
  (``\\``, ``\"``, ``\n`` only), float-parseable sample values;
* per-type rules — counters never negative, histogram sample names
  restricted to ``_bucket``/``_sum``/``_count``;
* histogram invariants per label set — ``le`` bounds strictly
  increasing, cumulative bucket counts non-decreasing, a ``+Inf``
  bucket present and equal to ``_count``, ``_sum`` present;
* uniqueness — no duplicate family names, no duplicate sample
  (name, labelset) pairs.
"""

from __future__ import annotations

import math
import re

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class PromParseError(AssertionError):
    """Raised on any violation of the strict exposition grammar."""


class Family:
    """One parsed metric family: name, type, help, samples."""

    def __init__(self, name: str, type: str, help: str) -> None:
        self.name = name
        self.type = type
        self.help = help
        # (sample_name, frozenset(labels.items())) -> float value
        self.samples: dict[tuple, float] = {}
        # preserved per-sample label dicts for richer assertions
        self.labelsets: list[tuple[str, dict, float]] = []

    def value(self, sample_name: str | None = None, **labels) -> float:
        """Return the value of one sample (raises KeyError if absent)."""
        name = sample_name or self.name
        return self.samples[(name, frozenset(labels.items()))]

    def label_values(self, label: str) -> set:
        """Every observed value of one label across this family's samples."""
        return {
            d[label] for _, d, _ in self.labelsets if label in d
        }


def _unescape_label(raw: str, where: str) -> str:
    out = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\":
            if i + 1 >= len(raw):
                raise PromParseError(f"{where}: dangling backslash")
            nxt = raw[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == "n":
                out.append("\n")
            elif nxt == '"':
                out.append('"')
            else:
                raise PromParseError(f"{where}: bad escape \\{nxt}")
            i += 2
        elif ch == '"':
            raise PromParseError(f"{where}: unescaped quote in label value")
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(raw: str, where: str) -> dict:
    """Parse ``name="value",...`` (the text between braces)."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(raw):
        eq = raw.find("=", i)
        if eq < 0:
            raise PromParseError(f"{where}: label without '='")
        name = raw[i:eq]
        if not LABEL_RE.match(name):
            raise PromParseError(f"{where}: bad label name {name!r}")
        if name in labels:
            raise PromParseError(f"{where}: duplicate label {name!r}")
        if eq + 1 >= len(raw) or raw[eq + 1] != '"':
            raise PromParseError(f"{where}: label value must be quoted")
        j = eq + 2
        while j < len(raw):
            if raw[j] == "\\":
                j += 2
            elif raw[j] == '"':
                break
            else:
                j += 1
        if j >= len(raw) or raw[j] != '"':
            raise PromParseError(f"{where}: unterminated label value")
        labels[name] = _unescape_label(raw[eq + 2 : j], where)
        i = j + 1
        if i < len(raw):
            if raw[i] != ",":
                raise PromParseError(f"{where}: expected ',' between labels")
            i += 1
            if i == len(raw):
                raise PromParseError(f"{where}: trailing comma")
    return labels


def _parse_value(raw: str, where: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise PromParseError(f"{where}: unparseable value {raw!r}") from None


def _split_sample(line: str, where: str) -> tuple[str, dict, float]:
    """Split one sample line into (name, labels, value)."""
    if "{" in line:
        name, rest = line.split("{", 1)
        close = rest.rfind("}")
        if close < 0:
            raise PromParseError(f"{where}: missing '}}'")
        labels = _parse_labels(rest[:close], where)
        tail = rest[close + 1 :].strip()
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise PromParseError(f"{where}: sample without value")
        name, tail = parts[0], parts[1].strip()
        labels = {}
    if not NAME_RE.match(name):
        raise PromParseError(f"{where}: bad sample name {name!r}")
    if not tail or " " in tail:
        # (no timestamp support: the renderer never emits them)
        raise PromParseError(f"{where}: expected exactly one value, got {tail!r}")
    return name, labels, _parse_value(tail, where)


def _check_histogram(family: Family) -> None:
    """Enforce bucket monotonicity and +Inf/sum/count per label set."""
    by_set: dict[frozenset, dict] = {}
    for name, labels, value in family.labelsets:
        base = {k: v for k, v in labels.items() if k != "le"}
        key = frozenset(base.items())
        slot = by_set.setdefault(key, {"buckets": [], "sum": None, "count": None})
        if name == f"{family.name}_bucket":
            if "le" not in labels:
                raise PromParseError(f"{family.name}: bucket without 'le'")
            slot["buckets"].append((_parse_value(labels["le"], family.name), value))
        elif name == f"{family.name}_sum":
            slot["sum"] = value
        elif name == f"{family.name}_count":
            slot["count"] = value
        else:
            raise PromParseError(
                f"{family.name}: unexpected histogram sample {name!r}"
            )
    if not by_set:
        raise PromParseError(f"{family.name}: histogram with no samples")
    for key, slot in by_set.items():
        where = f"{family.name}{dict(key) or ''}"
        buckets, total, count = slot["buckets"], slot["sum"], slot["count"]
        if total is None or count is None:
            raise PromParseError(f"{where}: missing _sum or _count")
        if not buckets:
            raise PromParseError(f"{where}: no _bucket samples")
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise PromParseError(f"{where}: le bounds not strictly increasing")
        if bounds[-1] != math.inf:
            raise PromParseError(f"{where}: missing +Inf bucket")
        counts = [c for _, c in buckets]
        if any(b > a for a, b in zip(counts[1:], counts)):
            raise PromParseError(f"{where}: bucket counts not cumulative")
        if any(c < 0 for c in counts):
            raise PromParseError(f"{where}: negative bucket count")
        if counts[-1] != count:
            raise PromParseError(
                f"{where}: +Inf bucket {counts[-1]} != _count {count}"
            )
        if count < 0:
            raise PromParseError(f"{where}: negative _count")


def parse(text: str) -> dict[str, Family]:
    """Strictly parse one exposition; return families keyed by name."""
    if not text:
        raise PromParseError("empty exposition")
    if not text.endswith("\n"):
        raise PromParseError("exposition must end with a newline")
    families: dict[str, Family] = {}
    pending_help: tuple[str, str] | None = None
    current: Family | None = None
    for lineno, line in enumerate(text.split("\n")[:-1], start=1):
        where = f"line {lineno}"
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(" ", 1)
            name = parts[0]
            if not NAME_RE.match(name):
                raise PromParseError(f"{where}: bad family name {name!r}")
            if name in families:
                raise PromParseError(f"{where}: duplicate family {name!r}")
            if pending_help is not None:
                raise PromParseError(f"{where}: HELP without a following TYPE")
            pending_help = (name, parts[1] if len(parts) > 1 else "")
        elif line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split()
            if len(parts) != 2:
                raise PromParseError(f"{where}: malformed TYPE line")
            name, type_ = parts
            if type_ not in TYPES:
                raise PromParseError(f"{where}: unknown type {type_!r}")
            if pending_help is None or pending_help[0] != name:
                raise PromParseError(f"{where}: TYPE {name!r} without its HELP")
            current = families[name] = Family(name, type_, pending_help[1])
            pending_help = None
        elif line.startswith("#"):
            raise PromParseError(f"{where}: stray comment {line!r}")
        elif not line.strip():
            raise PromParseError(f"{where}: blank line inside exposition")
        else:
            if current is None:
                raise PromParseError(f"{where}: sample before any family header")
            name, labels, value = _split_sample(line, where)
            if current.type == "histogram":
                allowed = {
                    f"{current.name}_bucket",
                    f"{current.name}_sum",
                    f"{current.name}_count",
                }
                if name not in allowed:
                    raise PromParseError(
                        f"{where}: {name!r} does not belong to histogram "
                        f"{current.name!r}"
                    )
            else:
                if name != current.name:
                    raise PromParseError(
                        f"{where}: {name!r} does not belong to family "
                        f"{current.name!r}"
                    )
                if current.type == "counter" and value < 0:
                    raise PromParseError(f"{where}: negative counter value")
            key = (name, frozenset(labels.items()))
            if key in current.samples:
                raise PromParseError(f"{where}: duplicate sample {key!r}")
            current.samples[key] = value
            current.labelsets.append((name, labels, value))
    if pending_help is not None:
        raise PromParseError(f"HELP {pending_help[0]!r} without TYPE")
    for family in families.values():
        if family.type == "histogram":
            _check_histogram(family)
        elif not family.samples:
            raise PromParseError(f"{family.name}: family with no samples")
    return families
