"""Chaos equivalence: a faulted run must converge to the fault-free run.

The suite drives one deterministic client workload twice — once against a
clean serving stack, once against a stack with a seeded
:class:`~repro.faults.FaultPlan` injecting faults at every seam (shard
workers, the WAL's fsync path, the TCP transport) — and asserts the
retrying client ends with *identical* replies and the server with
*identical* state.  That is the whole resilience contract in one
sentence: faults may cost retries and latency, never correctness, and no
acked update is ever applied twice.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import ShardedIRS
from repro.faults import FaultPlan, FaultyBackend, FaultyFile, FaultyProxy
from repro.rng import derive_seed
from repro.serve import ReproServer, ResilientClient, RetryPolicy
from repro.shard.executors import SerialBackend

DATA = [float(i) for i in range(200)]

POLICY = RetryPolicy(max_attempts=10, base_delay=0.005, max_delay=0.03)


def run(coro):
    return asyncio.run(coro)


def build_structure(plan=None):
    backend = SerialBackend() if plan is None else FaultyBackend(SerialBackend(), plan)
    return ShardedIRS(DATA, num_shards=3, seed=11, backend=backend)


def workload():
    """The deterministic request stream: seeded reads + unique updates."""
    payloads = []
    for k in range(25):
        payloads.append(
            {"op": "sample", "lo": 10.0, "hi": 180.0, "t": 6,
             "seed": 1000 + k, "id": f"s{k}"}
        )
        payloads.append({"op": "insert", "value": 1000.0 + k, "id": f"i{k}"})
        payloads.append({"op": "count", "lo": 0.0, "hi": 2000.0, "id": f"c{k}"})
        if k % 5 == 0:
            payloads.append({"op": "delete", "value": float(k), "id": f"d{k}"})
    return payloads


async def run_stack(tmp_path, tag, plan):
    """Run the workload against one stack; return (replies, final_state)."""
    structure = build_structure(plan)
    server = ReproServer(
        structure, seed=5, data_dir=str(tmp_path / tag), fsync="always"
    )
    if plan is not None:
        # Every WAL segment handle goes through the fault wrapper: fsync
        # faults make appends fail (and roll back), exercising the
        # retryable `unavailable` refusal under real durable traffic.
        server.store.wal.file_wrapper = lambda fh: FaultyFile(fh, plan)
    await server.start_tcp("127.0.0.1", 0)
    proxy = None
    try:
        port = server.port
        if plan is not None:
            proxy = FaultyProxy(plan, server.port)
            await proxy.start()
            port = proxy.port
        client = ResilientClient("127.0.0.1", port, policy=POLICY, seed=99)
        try:
            replies = [await client.request(dict(p)) for p in workload()]
        finally:
            await client.aclose()
        state = structure.export_sorted().tolist()
        return replies, state
    finally:
        if proxy is not None:
            await proxy.aclose()
        await server.aclose()


def chaos_plan(seed):
    return FaultPlan(
        seed,
        rates={
            "proxy.drop": 0.04,
            "proxy.truncate": 0.03,
            "proxy.delay": 0.08,
            "wal.fsync": 0.05,
        },
        # Force at least one fault at each non-transport seam so the
        # equivalence assertion can never pass vacuously.
        at={"shard.die": {1}, "shard.stall": {3}, "wal.fsync": {2}},
    )


def assert_equivalent(tmp_path, plan_seed):
    plan = chaos_plan(plan_seed)
    faulted, faulted_state = run(run_stack(tmp_path, f"faulted-{plan_seed}", plan))
    clean, clean_state = run(run_stack(tmp_path, f"clean-{plan_seed}", None))
    detail = (
        f"chaos seed {plan_seed}: fired={plan.fired} history={plan.history}"
    )
    assert faulted == clean, detail
    assert faulted_state == clean_state, detail
    return plan


def test_chaos_equivalence_under_all_seams(tmp_path):
    plan = assert_equivalent(tmp_path, 2026)
    # The run must actually have injected something at each seam class,
    # or the equivalence assertion is vacuous.
    assert plan.fired.get("shard.die", 0) >= 1
    assert plan.fired.get("wal.fsync", 0) >= 1
    assert any(site.startswith("proxy.") for site in plan.fired)


def test_chaos_acked_updates_applied_exactly_once(tmp_path):
    plan = chaos_plan(7)
    replies, state = run(run_stack(tmp_path, "once", plan))
    by_id = {p["id"]: r for p, r in zip(workload(), replies)}
    for k in range(25):
        assert by_id[f"i{k}"]["ok"] is True, by_id[f"i{k}"]
        # Acked insert of a unique value: present exactly once, however
        # many times the wire lost the ack and the client retried.
        assert state.count(1000.0 + k) == 1
    for k in range(0, 25, 5):
        assert by_id[f"d{k}"]["ok"] is True
        assert state.count(float(k)) == 0


def test_chaos_dedup_survives_crash_recovery(tmp_path):
    """Retry an acked update across a crash-restart: replay, not re-apply."""
    data_dir = str(tmp_path / "srv")
    rid_payload = {"op": "insert", "value": 4242.5, "rid": "chaos-rid", "id": 1}

    async def before():
        server = ReproServer(
            build_structure(), seed=5, data_dir=data_dir, fsync="always"
        )
        await server.start_tcp("127.0.0.1", 0)
        async with ResilientClient("127.0.0.1", server.port, seed=1) as client:
            assert (await client.request(dict(rid_payload)))["ok"]
        # Crash: no shutdown snapshot — recovery must replay the WAL and
        # rebuild the dedup window from the journaled rid spans.
        server._store_closed = True
        server.store.close()
        await server.aclose()

    async def after():
        server = ReproServer(
            build_structure(), seed=5, data_dir=data_dir, fsync="always"
        )
        assert server.recovery.dedup.get("chaos-rid") == (True, 1)
        await server.start_tcp("127.0.0.1", 0)
        async with ResilientClient("127.0.0.1", server.port, seed=2) as client:
            dup = await client.request(dict(rid_payload))
            count = await client.count(4242.0, 4243.0)
        await server.aclose()
        return dup, count, server.stats.dedup_hits

    run(before())
    dup, count, hits = run(after())
    assert dup == {"id": 1, "ok": True, "result": 1}
    assert count == 1 and hits == 1


@pytest.mark.slow
def test_chaos_randomized_rounds(tmp_path):
    """Seeded random chaos rounds; a failure prints its reproduction seed."""
    root = 0xC4A05
    for round_index in range(5):
        plan_seed = derive_seed(root, round_index) & 0xFFFFFFFF
        assert_equivalent(tmp_path, plan_seed)
