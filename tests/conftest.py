"""Shared fixtures: canonical datasets and samplers under fixed seeds.

All statistical tests in this suite are deterministic: fixed data seed,
fixed sampler seed, generous p-value thresholds.  They are calibrated so an
honest sampler passes with huge margin and a biased one fails by orders of
magnitude; they are not flaky re-rolls.
"""

from __future__ import annotations

import pytest

from repro.workloads import (
    duplicate_heavy,
    gaussian_mixture,
    uniform_points,
    zipf_gaps,
)

# Honest samplers must beat this; the cheating baseline must fall far below.
P_PASS = 1e-4
P_FAIL = 1e-6


@pytest.fixture(scope="session")
def uniform_data() -> list[float]:
    return uniform_points(5000, seed=101)


@pytest.fixture(scope="session")
def clustered_data() -> list[float]:
    return gaussian_mixture(5000, clusters=6, seed=202)


@pytest.fixture(scope="session")
def zipf_data() -> list[float]:
    return zipf_gaps(5000, alpha=1.5, seed=303)


@pytest.fixture(scope="session")
def duplicated_data() -> list[float]:
    return duplicate_heavy(5000, distinct=48, seed=404)
