"""Correctness tests for every baseline (they gate the benchmarks)."""

from __future__ import annotations

import pytest

from repro import EmptyRangeError
from repro.baselines import (
    CachedSampleBaseline,
    EMPerSample,
    EMReportSample,
    RejectionGlobalSampler,
    ReportThenSample,
    TreeWalkSampler,
)
from repro.errors import KeyNotFoundError
from repro.stats import uniformity_test

RAM_BASELINES = [ReportThenSample, TreeWalkSampler, RejectionGlobalSampler]
EM_BASELINES = [EMReportSample, EMPerSample]


@pytest.mark.parametrize("cls", RAM_BASELINES)
class TestRAMBaselines:
    def test_count_report_match_bruteforce(self, cls, uniform_data):
        b = cls(uniform_data, seed=1)
        lo, hi = 0.25, 0.66
        expected = sorted(v for v in uniform_data if lo <= v <= hi)
        assert b.count(lo, hi) == len(expected)
        assert b.report(lo, hi) == expected

    def test_samples_in_range(self, cls, uniform_data):
        b = cls(uniform_data, seed=2)
        assert all(0.3 <= v <= 0.7 for v in b.sample(0.3, 0.7, 200))

    def test_empty_range_raises(self, cls, uniform_data):
        b = cls(uniform_data, seed=3)
        with pytest.raises(EmptyRangeError):
            b.sample(5.0, 6.0, 1)
        assert b.sample(5.0, 6.0, 0) == []

    def test_uniformity(self, cls):
        values = [float(i) for i in range(80)]
        b = cls(values, seed=4)
        samples = b.sample(9.5, 69.5, 12_000)
        population = [v for v in values if 9.5 <= v <= 69.5]
        _stat, p = uniformity_test(samples, population)
        assert p > 1e-4

    def test_updates(self, cls):
        b = cls([1.0, 2.0, 3.0], seed=5)
        b.insert(2.5)
        assert b.count(2.0, 3.0) == 3
        b.delete(2.5)
        assert b.count(2.0, 3.0) == 2
        with pytest.raises(KeyNotFoundError):
            b.delete(9.0)


@pytest.mark.parametrize("cls", EM_BASELINES)
class TestEMBaselines:
    def test_correctness(self, cls):
        values = [float(i) for i in range(3000)]
        b = cls(values, block_size=64, seed=6)
        assert b.count(10.0, 19.0) == 10
        assert b.report(10.0, 12.0) == [10.0, 11.0, 12.0]
        samples = b.sample(100.0, 2000.0, 300)
        assert len(samples) == 300
        assert all(100.0 <= v <= 2000.0 for v in samples)

    def test_empty_range(self, cls):
        b = cls([1.0, 2.0], block_size=4, seed=7)
        with pytest.raises(EmptyRangeError):
            b.sample(5.0, 6.0, 1)

    def test_uniformity(self, cls):
        values = [float(i) for i in range(500)]
        b = cls(values, block_size=32, seed=8)
        samples = b.sample(49.5, 449.5, 10_000)
        _stat, p = uniformity_test(samples, [float(i) for i in range(50, 450)])
        assert p > 1e-4


class TestEMBaselineIOShapes:
    def test_report_baseline_pays_k_over_b(self):
        values = [float(i) for i in range(65_536)]
        b = EMReportSample(values, block_size=256, pool_capacity=8, seed=9)
        before = b.device.stats.snapshot()
        b.sample(0.5, 60_000.5, 1)  # K = 60000, t = 1
        delta = b.io_delta(before)
        assert delta.reads >= 60_000 // 256  # the scan dominates

    def test_per_sample_baseline_pays_t(self):
        values = [float(i) for i in range(65_536)]
        b = EMPerSample(values, block_size=256, pool_capacity=8, seed=10)
        before = b.device.stats.snapshot()
        t = 400
        b.sample(0.5, 60_000.5, t)
        delta = b.io_delta(before)
        # Random probes over 234 data blocks with an 8-frame pool: nearly
        # every probe misses.
        assert delta.reads >= t // 2


class TestCheatingCache:
    def test_replays_identical_answers(self, uniform_data):
        c = CachedSampleBaseline(uniform_data, seed=11)
        assert c.sample(0.2, 0.6, 8) == c.sample(0.2, 0.6, 8)

    def test_marginal_uniformity_still_passes(self):
        """The cheat is invisible to marginal tests — that is the point."""
        values = [float(i) for i in range(60)]
        c = CachedSampleBaseline(values, seed=12)
        # One *fresh* query per interval: marginals are honest.
        samples = []
        for i in range(3000):
            lo = -0.5 + (i % 7) * 1e-9  # distinct cache keys
            samples.extend(CachedSampleBaseline(values, seed=i).sample(lo, 59.5, 4))
        _stat, p = uniformity_test(samples, values)
        assert p > 1e-4

    def test_count_report_delegate(self, uniform_data):
        c = CachedSampleBaseline(uniform_data, seed=13)
        assert c.count(0.1, 0.2) == len(c.report(0.1, 0.2))
