"""Per-request tracing: the span model, the ring, and live attribution."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import DynamicIRS, ShardedIRS
from repro.obs import Span, TraceRecord, TraceRing, chrome_trace
from repro.obs import trace as trace_mod
from repro.serve import ReproServer, ServeClient

DATA = [float(i) for i in range(2000)]


def run(coro):
    return asyncio.run(coro)


# -- span / record / ring ----------------------------------------------------


def test_span_to_dict():
    span = Span("admission", 1.25, 0.002, {"kind": "sample"})
    d = span.to_dict()
    assert d == {
        "name": "admission",
        "start": 1.25,
        "duration": 0.002,
        "detail": {"kind": "sample"},
    }
    assert "detail" not in Span("x", 0.0, 0.0).to_dict()


def test_record_accumulates_spans():
    rec = TraceRecord(7, "req-1", "sample", 0.5)
    rec.add("admission", 0.5, 0.001)
    rec.add("execute", 0.501, 0.004, {"batch": 3})
    d = rec.to_dict()
    assert d["trace_id"] == 7 and d["kind"] == "sample"
    assert [s["name"] for s in d["spans"]] == ["admission", "execute"]


def test_ring_bounds_memory():
    ring = TraceRing(capacity=4)
    ids = [ring.next_id() for _ in range(10)]
    assert ids == list(range(1, 11))  # monotone, never reused
    for i in ids:
        ring.push(TraceRecord(i, None, "sample", 0.0))
    assert len(ring) == 4
    assert ring.total == 10
    assert [r.trace_id for r in ring.recent()] == [7, 8, 9, 10]
    assert [r.trace_id for r in ring.recent(limit=2)] == [9, 10]
    assert ring.recent(limit=0) == []


# -- the active-trace bridge -------------------------------------------------


def test_task_spans_dropped_when_inactive():
    trace_mod.clear_active()
    trace_mod.record_task_span(1, 0, 0.0, 0.1, 5)
    assert trace_mod.clear_active() == []


def test_bridge_round_trip():
    trace_mod.set_active({101: 1, 202: 2})
    assert trace_mod.active_trace_id(101) == 1
    assert trace_mod.active_trace_id(999) is None
    trace_mod.record_task_span(1, 0, 0.0, 0.1, 5)
    trace_mod.record_task_span(None, 3, 0.1, 0.2, 7)
    spans = trace_mod.clear_active()
    assert spans == [(1, 0, 0.0, 0.1, 5), (None, 3, 0.1, 0.2, 7)]
    # Cleared: the table is down and the spans were handed off.
    assert trace_mod.active_trace_id(101) is None
    assert trace_mod.clear_active() == []


# -- Chrome trace export -----------------------------------------------------


def test_chrome_trace_shape():
    rec = TraceRecord(3, "req-9", "sample", 1.0)
    rec.add("admission", 1.0, 0.001)
    rec.add("shard_task", 1.001, 0.002, {"shard": 2, "n": 16})
    doc = json.loads(chrome_trace([rec]))
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(meta) == 1 and meta[0]["pid"] == 3
    assert {e["name"] for e in spans} == {"admission", "shard_task"}
    shard_ev = next(e for e in spans if e["name"] == "shard_task")
    assert shard_ev["tid"] == 3  # shard + 1, so lane 0 stays for phases
    assert shard_ev["dur"] >= 1  # microseconds, floored at 1 for visibility
    admission = next(e for e in spans if e["name"] == "admission")
    assert admission["tid"] == 0
    assert admission["ts"] == int(1.0 * 1e6)


# -- live end-to-end ---------------------------------------------------------


def test_server_traces_request_phases():
    async def main():
        async with ReproServer(DynamicIRS(DATA, seed=3), seed=5, window=0.0) as server:
            client = ServeClient(server)
            await client.sample(100.0, 1900.0, 8, seed=42)
            await client.insert(50.0)
            snap = server.trace_snapshot()
            assert snap["enabled"] is True
            assert snap["total"] == 2
            names = {s["name"] for r in snap["records"] for s in r["spans"]}
            assert {"admission", "coalesce_wait", "execute", "reply"} <= names
            sample_rec = snap["records"][0]
            assert sample_rec["kind"] == "sample"
            reply = next(s for s in sample_rec["spans"] if s["name"] == "reply")
            assert reply["detail"] == {"ok": True}
            return snap

    run(main())


def test_server_attributes_shard_tasks_to_traces():
    async def main():
        sharded = ShardedIRS(DATA, num_shards=4, seed=9)
        async with ReproServer(sharded, seed=5, window=0.0) as server:
            client = ServeClient(server)
            await client.sample(0.0, 2000.0, 64, seed=7)
            snap = server.trace_snapshot()
            rec = snap["records"][0]
            tasks = [s for s in rec["spans"] if s["name"] == "shard_task"]
            assert tasks, "expected shard_task spans on a sharded sample"
            shards = {s["detail"]["shard"] for s in tasks}
            assert shards <= set(range(4)) and len(shards) >= 1
            assert all(s["detail"]["n"] >= 1 for s in tasks)
            assert not any(s["detail"].get("aggregate") for s in tasks)

    run(main())


def test_trace_ring_bounded_on_server():
    async def main():
        async with ReproServer(
            DynamicIRS(DATA, seed=3), seed=5, window=0.0, trace_capacity=4
        ) as server:
            client = ServeClient(server)
            for _ in range(10):
                await client.count(0.0, 2000.0)
            snap = server.trace_snapshot()
            assert snap["total"] == 10
            assert len(snap["records"]) == 4
            limited = server.trace_snapshot(limit=2)
            assert len(limited["records"]) == 2

    run(main())


def test_trace_op_and_validation():
    async def main():
        async with ReproServer(DynamicIRS(DATA, seed=3), seed=5) as server:
            client = ServeClient(server)
            await client.sample(0.0, 2000.0, 4)
            body = await client.request({"op": "trace", "id": 1})
            assert body["ok"] is True
            assert body["result"]["enabled"] is True
            assert body["result"]["records"]
            bad = await client.request({"op": "trace", "id": 2, "limit": -1})
            assert bad["ok"] is False
            assert bad["error"]["type"] == "bad_request"

    run(main())


def test_observe_off_disables_tracing():
    async def main():
        async with ReproServer(
            DynamicIRS(DATA, seed=3), seed=5, observe=False
        ) as server:
            client = ServeClient(server)
            await client.sample(0.0, 2000.0, 4)
            snap = server.trace_snapshot()
            assert snap == {"enabled": False, "total": 0, "records": []}
            with pytest.raises(RuntimeError):
                await server.start_metrics()

    run(main())
