"""Unit tests for the RandomSource façade."""

from __future__ import annotations

import pytest

from repro.rng import RandomSource, ScriptedSource, spawn


class TestRandomSource:
    def test_reproducible(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert [a.randrange(100) for _ in range(20)] == [
            b.randrange(100) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.randrange(10**9) for _ in range(5)] != [
            b.randrange(10**9) for _ in range(5)
        ]

    def test_draw_counting(self):
        rng = RandomSource(0)
        rng.randrange(10)
        rng.randint(0, 5)
        rng.random()
        rng.uniform(0.0, 2.0)
        assert rng.draws == 4
        rng.randranges(10, 7)
        assert rng.draws == 11
        rng.shuffle([1, 2, 3])
        assert rng.draws == 14

    def test_ranges_respected(self):
        rng = RandomSource(3)
        for _ in range(200):
            assert 0 <= rng.randrange(7) < 7
            assert 2 <= rng.randint(2, 4) <= 4
            assert 0.0 <= rng.random() < 1.0
            assert 1.0 <= rng.uniform(1.0, 3.0) <= 3.0

    def test_spawn_streams_are_independent_and_deterministic(self):
        a1 = RandomSource(5).spawn()
        a2 = RandomSource(5).spawn()
        assert [a1.random() for _ in range(5)] == [a2.random() for _ in range(5)]

    def test_spawn_numpy_is_deterministic_side_stream(self):
        a = RandomSource(5).spawn_numpy()
        b = RandomSource(5).spawn_numpy()
        assert a.integers(0, 1000, size=8).tolist() == b.integers(
            0, 1000, size=8
        ).tolist()

    def test_spawn_numpy_does_not_count_draws(self):
        rng = RandomSource(5)
        gen = rng.spawn_numpy()
        gen.integers(0, 10, size=100)
        assert rng.draws == 0

    def test_spawn_numpy_advances_parent_stream(self):
        rng = RandomSource(5)
        first = rng.spawn_numpy()
        second = rng.spawn_numpy()
        assert first.integers(0, 10**9, size=4).tolist() != second.integers(
            0, 10**9, size=4
        ).tolist()

    def test_spawn_helper_indexing(self):
        s0 = spawn(9, 0)
        s1 = spawn(9, 1)
        s0_again = spawn(9, 0)
        seq0 = [s0.randrange(1000) for _ in range(5)]
        assert seq0 == [s0_again.randrange(1000) for _ in range(5)]
        assert seq0 != [s1.randrange(1000) for _ in range(5)]

    def test_choice_index_follows_cumulative_table(self):
        rng = ScriptedSource([0.0, 0.49, 0.51, 0.99])
        cumulative = [5.0, 10.0]
        picks = [rng.choice_index(cumulative) for _ in range(4)]
        assert picks == [0, 0, 1, 1]


class TestScriptedSource:
    def test_script_consumed_in_order(self):
        rng = ScriptedSource([0.0, 0.5, 0.999])
        assert rng.randrange(10) == 0
        assert rng.randrange(10) == 5
        assert rng.randrange(10) == 9

    def test_randint_maps_inclusive(self):
        rng = ScriptedSource([0.0, 0.999])
        assert rng.randint(3, 5) == 3
        assert rng.randint(3, 5) == 5

    def test_falls_back_to_seeded_source(self):
        rng = ScriptedSource([0.5], seed=11)
        rng.random()
        value = rng.random()  # from the fallback generator
        assert 0.0 <= value < 1.0

    def test_uniform_uses_script(self):
        rng = ScriptedSource([0.25])
        assert rng.uniform(0.0, 8.0) == pytest.approx(2.0)
