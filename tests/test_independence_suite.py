"""Integration: independence across queries — the property in the title.

Every honest sampler must pass the repeated-query independence test; the
deliberately broken :class:`CachedSampleBaseline` must fail it.  This is
experiment F9's acceptance version.
"""

from __future__ import annotations

import pytest

from repro import DynamicIRS, ExternalIRS, ShardedIRS, StaticIRS, WeightedStaticIRS
from repro.baselines import CachedSampleBaseline, ReportThenSample, TreeWalkSampler
from repro.stats import repeated_query_test, within_query_test

N = 400
DATA = [float(i) for i in range(N)]
LO, HI = 49.5, 349.5


HONEST = {
    "static": lambda: StaticIRS(DATA, seed=61),
    "dynamic": lambda: DynamicIRS(DATA, seed=62),
    "external": lambda: ExternalIRS(DATA, block_size=32, seed=63),
    "weighted": lambda: WeightedStaticIRS(DATA, [1.0] * N, seed=64),
    "sharded": lambda: ShardedIRS(DATA, num_shards=4, seed=67),
    "report": lambda: ReportThenSample(DATA, seed=65),
    "treewalk": lambda: TreeWalkSampler(DATA, seed=66),
}


@pytest.mark.parametrize("name", HONEST)
def test_honest_samplers_pass_repeated_query_test(name):
    sampler = HONEST[name]()
    _stat, p = repeated_query_test(
        lambda: sampler.sample(LO, HI, 1)[0], repeats=600, bins=4
    )
    assert p > 1e-4, f"{name} failed cross-query independence: p={p:.2e}"


@pytest.mark.parametrize("name", HONEST)
def test_honest_samplers_pass_within_query_test(name):
    sampler = HONEST[name]()
    samples = sampler.sample(LO, HI, 4000)
    _stat, p = within_query_test(samples, bins=4)
    assert p > 1e-4, f"{name} failed within-query independence: p={p:.2e}"


def test_cheating_cache_fails_repeated_query_test():
    cheat = CachedSampleBaseline(DATA, seed=67)
    _stat, p = repeated_query_test(
        lambda: cheat.sample(LO, HI, 1)[0], repeats=600, bins=4
    )
    assert p < 1e-6, f"negative control slipped through: p={p:.2e}"


def test_fresh_queries_differ():
    """Two identical queries on honest samplers almost surely differ."""
    for name, factory in HONEST.items():
        sampler = factory()
        a = sampler.sample(LO, HI, 32)
        b = sampler.sample(LO, HI, 32)
        assert a != b, f"{name} replayed a query answer"
