"""Integration: independence across queries — the property in the title.

Every honest sampler must pass the repeated-query independence test; the
deliberately broken :class:`CachedSampleBaseline` must fail it.  This is
experiment F9's acceptance version.
"""

from __future__ import annotations

import pytest
from statgates import (
    negative_control,
    repeated_query_gate,
    within_query_gate,
)

from repro import DynamicIRS, ExternalIRS, ShardedIRS, StaticIRS, WeightedStaticIRS
from repro.baselines import CachedSampleBaseline, ReportThenSample, TreeWalkSampler
from repro.stats import repeated_query_test

N = 400
DATA = [float(i) for i in range(N)]
LO, HI = 49.5, 349.5


HONEST = {
    "static": lambda: StaticIRS(DATA, seed=61),
    "dynamic": lambda: DynamicIRS(DATA, seed=62),
    "external": lambda: ExternalIRS(DATA, block_size=32, seed=63),
    "weighted": lambda: WeightedStaticIRS(DATA, [1.0] * N, seed=64),
    "sharded": lambda: ShardedIRS(DATA, num_shards=4, seed=67),
    "report": lambda: ReportThenSample(DATA, seed=65),
    "treewalk": lambda: TreeWalkSampler(DATA, seed=66),
}


@pytest.mark.parametrize("name", HONEST)
def test_honest_samplers_pass_repeated_query_test(name):
    sampler = HONEST[name]()
    repeated_query_gate(
        lambda: sampler.sample(LO, HI, 1)[0],
        repeats=600,
        bins=4,
        label=f"{name} cross-query independence",
    )


@pytest.mark.parametrize("name", HONEST)
def test_honest_samplers_pass_within_query_test(name):
    sampler = HONEST[name]()
    within_query_gate(
        lambda attempt: sampler.sample(LO, HI, 4000),
        bins=4,
        label=f"{name} within-query independence",
    )


def test_cheating_cache_fails_repeated_query_test():
    cheat = CachedSampleBaseline(DATA, seed=67)
    negative_control(
        lambda attempt: repeated_query_test(
            lambda: cheat.sample(LO, HI, 1)[0], repeats=600, bins=4
        ),
        label="cached-sample baseline",
    )


def test_fresh_queries_differ():
    """Two identical queries on honest samplers almost surely differ."""
    for name, factory in HONEST.items():
        sampler = factory()
        a = sampler.sample(LO, HI, 32)
        b = sampler.sample(LO, HI, 32)
        assert a != b, f"{name} replayed a query answer"
