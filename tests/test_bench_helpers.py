"""Tests for the measurement helpers feeding the experiment harness."""

from __future__ import annotations

import json

from repro.bench import (
    Series,
    dump_experiment_json,
    format_markdown_table,
    format_table,
    geometric_range,
    mixed_throughput,
    time_callable,
    update_throughput,
)
from repro.bench.memory import deep_size_bytes


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_float_rendering(self):
        text = format_table(["x"], [[0.00001], [12345678.0], [1.5], [0]])
        assert "1.000e-05" in text
        assert "1.235e+07" in text
        assert "1.5" in text

    def test_markdown_table(self):
        text = format_markdown_table(["a", "b"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestHarness:
    def test_geometric_range(self):
        assert geometric_range(1, 16) == [1, 2, 4, 8, 16]
        assert geometric_range(3, 30, factor=3) == [3, 9, 27]
        assert geometric_range(5, 4) == []

    def test_time_callable_returns_min(self):
        calls = []

        def fn():
            calls.append(1)

        elapsed = time_callable(fn, repeat=3)
        assert len(calls) == 3
        assert elapsed >= 0.0

    def test_series(self):
        a = Series("a")
        b = Series("b")
        for x, (ya, yb) in enumerate([(1.0, 2.0), (2.0, 8.0)]):
            a.add(x, ya)
            b.add(x, yb)
        assert a.ratio_to(b) == [2.0, 4.0]

    def test_update_throughput_fresh_structure_per_run(self):
        built = []

        def make():
            built.append(object())
            return len(built)

        applied = []
        rate = update_throughput(make, applied.append, count=10, repeat=3)
        assert len(built) == 3  # one untimed build per repeat
        assert applied == [1, 2, 3]  # each run sees its own structure
        assert rate > 0.0

    def test_mixed_throughput(self):
        from repro import BatchQueryRunner, DynamicIRS

        runner = BatchQueryRunner(DynamicIRS([float(i) for i in range(100)], seed=1))
        # Replayable stream: what it inserts it also deletes.
        ops = (
            [("insert", 200.0 + i) for i in range(10)]
            + [("sample", 0.0, 300.0, 8)]
            + [("delete", 200.0 + i) for i in range(10)]
        )
        assert mixed_throughput(runner, ops, repeat=2) > 0.0
        assert mixed_throughput(runner, [], repeat=2) == 0.0

    def test_dump_experiment_json(self, tmp_path):
        path = dump_experiment_json(
            str(tmp_path / "artifacts"),
            "F99",
            "demo experiment",
            ["series", "n", "ops/sec"],
            [["bulk", 1000, 1.5e6], ["scalar", 1000, 3.0e5]],
            extra={"speedup": 5.0},
        )
        assert path.endswith("BENCH_F99.json")
        payload = json.loads(open(path).read())
        assert payload["experiment"] == "F99"
        assert payload["headers"] == ["series", "n", "ops/sec"]
        assert payload["rows"][0] == ["bulk", 1000, 1.5e6]
        assert payload["extra"] == {"speedup": 5.0}


class TestDeepSize:
    def test_grows_with_content(self):
        small = deep_size_bytes([1.5] * 10)
        large = deep_size_bytes([float(i) for i in range(10_000)])
        assert large > small

    def test_shared_objects_counted_once(self):
        shared = [1.0, 2.0, 3.0]
        assert deep_size_bytes([shared, shared]) < 2 * deep_size_bytes([shared]) + 64

    def test_handles_cycles(self):
        a: list = []
        a.append(a)
        assert deep_size_bytes(a) > 0

    def test_slotted_objects(self):
        class Slotted:
            __slots__ = ("x",)

            def __init__(self):
                self.x = [0.0] * 100

        assert deep_size_bytes(Slotted()) > 100 * 8
