"""Unit + property tests for the packed-memory array."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pma import PackedMemoryArray


class Item:
    """Tracks its own cell index through the on_move callback."""

    __slots__ = ("label", "index")

    def __init__(self, label: int) -> None:
        self.label = label
        self.index = -1

    def __repr__(self) -> str:
        return f"Item({self.label}@{self.index})"


def on_move(item: Item, index: int) -> None:
    item.index = index


class TestBasics:
    def test_empty(self):
        pma = PackedMemoryArray(on_move)
        assert len(pma) == 0
        assert pma.items_in_order() == []
        pma.check_invariants()

    def test_insert_first(self):
        pma = PackedMemoryArray(on_move)
        item = Item(0)
        pma.insert_first(item)
        assert len(pma) == 1
        assert pma.get(item.index) is item

    @pytest.mark.parametrize("count", [0, 1, 7, 64, 500])
    def test_bulk_load(self, count):
        pma = PackedMemoryArray(on_move)
        items = [Item(i) for i in range(count)]
        pma.bulk_load(items)
        assert len(pma) == count
        assert pma.items_in_order() == items
        for item in items:
            assert pma.get(item.index) is item  # on_move fired exactly once
        if count:
            # Root density lands in the sweet spot: above half the target
            # (one doubling) and at most the root threshold.
            density = count / pma.capacity
            assert 0.3 <= density <= 0.6 or pma.capacity == 8
        pma.check_invariants()

    def test_bulk_load_replaces_and_supports_updates(self):
        pma = PackedMemoryArray(on_move)
        first = [Item(i) for i in range(40)]
        pma.bulk_load(first)
        second = [Item(100 + i) for i in range(200)]
        pma.bulk_load(second)
        assert pma.items_in_order() == second
        # The loaded array must behave like any other PMA under churn.
        extra = Item(999)
        pma.insert_after(second[0].index, extra)
        assert pma.items_in_order()[1] is extra
        pma.delete(second[5].index)
        assert len(pma) == 200
        pma.check_invariants()

    def test_sequential_appends_preserve_order(self):
        pma = PackedMemoryArray(on_move)
        items = [Item(i) for i in range(100)]
        pma.insert_first(items[0])
        for prev, item in zip(items, items[1:]):
            pma.insert_after(prev.index, item)
        assert pma.items_in_order() == items
        pma.check_invariants()

    def test_front_inserts_preserve_order(self):
        pma = PackedMemoryArray(on_move)
        items = [Item(i) for i in range(50)]
        for item in items:
            pma.insert_first(item)
        assert pma.items_in_order() == items[::-1]
        pma.check_invariants()

    def test_insert_after_gap_rejected(self):
        pma = PackedMemoryArray(on_move)
        item = Item(0)
        pma.insert_first(item)
        gap = (item.index + 1) % pma.capacity
        if pma.get(gap) is None:
            with pytest.raises(IndexError):
                pma.insert_after(gap, Item(1))

    def test_delete(self):
        pma = PackedMemoryArray(on_move)
        items = [Item(i) for i in range(20)]
        pma.insert_first(items[0])
        for prev, item in zip(items, items[1:]):
            pma.insert_after(prev.index, item)
        pma.delete(items[7].index)
        assert pma.items_in_order() == items[:7] + items[8:]
        with pytest.raises(IndexError):
            pma.delete(10**9)

    def test_delete_to_empty_shrinks(self):
        pma = PackedMemoryArray(on_move)
        items = [Item(i) for i in range(200)]
        pma.insert_first(items[0])
        for prev, item in zip(items, items[1:]):
            pma.insert_after(prev.index, item)
        grown = pma.capacity
        assert grown > 8
        for item in items:
            pma.delete(item.index)
        assert len(pma) == 0
        assert pma.capacity == 8

    def test_capacity_is_power_of_two(self):
        pma = PackedMemoryArray(on_move)
        items = [Item(i) for i in range(300)]
        pma.insert_first(items[0])
        for prev, item in zip(items, items[1:]):
            pma.insert_after(prev.index, item)
        cap = pma.capacity
        assert cap & (cap - 1) == 0
        assert cap >= 300


class TestIndexTracking:
    def test_on_move_keeps_indices_current(self):
        pma = PackedMemoryArray(on_move)
        items = [Item(i) for i in range(150)]
        pma.insert_first(items[0])
        for prev, item in zip(items, items[1:]):
            pma.insert_after(prev.index, item)
        for item in items:
            assert pma.get(item.index) is item

    def test_middle_churn_keeps_indices_current(self):
        rng = random.Random(5)
        pma = PackedMemoryArray(on_move)
        anchor = Item(-1)
        pma.insert_first(anchor)
        live = [anchor]
        for i in range(500):
            if rng.random() < 0.7 or len(live) < 2:
                item = Item(i)
                pma.insert_after(rng.choice(live).index, item)
                live.append(item)
            else:
                victim = live.pop(rng.randrange(1, len(live)))
                pma.delete(victim.index)
        for item in live:
            assert pma.get(item.index) is item
        pma.check_invariants()


class TestDensityForSampling:
    """The rejection sampler needs non-degenerate windows: between any two
    items, the fraction of gap cells must be bounded."""

    def test_window_density_after_heavy_deletes(self):
        rng = random.Random(11)
        pma = PackedMemoryArray(on_move)
        items = [Item(i) for i in range(1024)]
        pma.insert_first(items[0])
        for prev, item in zip(items, items[1:]):
            pma.insert_after(prev.index, item)
        live = list(items)
        # Delete 85% at random.
        rng.shuffle(live)
        for victim in live[: int(0.85 * len(live))]:
            pma.delete(victim.index)
        survivors = pma.items_in_order()
        width = survivors[-1].index - survivors[0].index + 1
        density = len(survivors) / width
        assert density >= 0.15, f"window density collapsed: {density:.3f}"
        pma.check_invariants()

    def test_hotspot_inserts_keep_density(self):
        pma = PackedMemoryArray(on_move)
        first = Item(-1)
        pma.insert_first(first)
        hot = first
        for i in range(2000):  # always insert at the same position
            item = Item(i)
            pma.insert_after(hot.index, item)
            hot = item
        ordered = pma.items_in_order()
        width = ordered[-1].index - ordered[0].index + 1
        assert len(ordered) / width >= 0.15
        pma.check_invariants()


@given(st.lists(st.tuples(st.booleans(), st.integers(0, 10**6)), max_size=150))
@settings(max_examples=60, deadline=None)
def test_random_ops_match_list_model(ops):
    pma = PackedMemoryArray(on_move)
    model: list[Item] = []
    rng = random.Random(1234)
    for is_insert, label in ops:
        if is_insert or not model:
            item = Item(label)
            if not model:
                pma.insert_first(item)
                model.insert(0, item)
            else:
                pos = rng.randrange(len(model))
                pma.insert_after(model[pos].index, item)
                model.insert(pos + 1, item)
        else:
            pos = rng.randrange(len(model))
            pma.delete(model[pos].index)
            model.pop(pos)
    assert pma.items_in_order() == model
    for item in model:
        assert pma.get(item.index) is item
    pma.check_invariants()
