"""Execution-backend tests for the sharded engine.

The headline property: under a fixed seed, ``serial``, ``threads`` and
``processes`` produce byte-identical samples — every scatter task derives
its generator from explicit ``(root, call, shard)`` integers and writes a
disjoint output slice, so neither the backend nor worker scheduling can
influence results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BatchQueryRunner, ShardedIRS
from repro.rng import derive_seed
from repro.shard import (
    BACKEND_NAMES,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from repro.workloads import uniform_points

N = 6000
QUERIES = [(0.1, 0.9, 2000), (0.0, 1.0, 500), (0.42, 0.58, 1000)]


@pytest.fixture(scope="module")
def data():
    return uniform_points(N, seed=71)


@pytest.fixture(scope="module")
def per_backend_results(data):
    """Samples from every backend under one seed (pools sized for CI)."""
    out = {}
    for backend in BACKEND_NAMES:
        with ShardedIRS(
            data, num_shards=4, seed=72, backend=backend, max_workers=2
        ) as s:
            out[backend] = (
                s.sample_bulk(0.15, 0.85, 3000),
                s.sample_bulk_many(QUERIES),
            )
    return out


class TestDeterminism:
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_matches_serial_exactly(self, per_backend_results, backend):
        serial_single, serial_many = per_backend_results["serial"]
        single, many = per_backend_results[backend]
        assert np.array_equal(serial_single, single)
        for a, b in zip(serial_many, many):
            assert np.array_equal(a, b)

    def test_weighted_processes_matches_serial(self, data):
        weights = [1.0 + (i % 7) for i in range(N)]
        results = {}
        for backend in ("serial", "processes"):
            with ShardedIRS(
                data, num_shards=4, weights=weights, seed=73,
                shard_kind="weighted-dynamic", backend=backend, max_workers=2,
            ) as s:
                results[backend] = s.sample_bulk(0.2, 0.8, 4000)
        assert np.array_equal(results["serial"], results["processes"])

    def test_derive_seed_is_stable_and_distinct(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)
        assert derive_seed(1, 2, 3) != derive_seed(2, 2, 3)
        assert 0 <= derive_seed(2**64 - 1, -1, 5) < 2**64


class TestProcessBackend:
    def test_snapshot_refresh_after_updates(self, data):
        with ShardedIRS(
            data, num_shards=4, seed=74, backend="processes", max_workers=2
        ) as s:
            before = s.sample_bulk(0.0, 1.0, 200)
            assert len(before) == 200
            s.insert_bulk([5.0] * 50)  # new region beyond the old max
            samples = s.sample_bulk(4.0, 6.0, 100)
            assert np.all(samples == 5.0)

    def test_close_then_reuse_rebuilds_pool(self, data):
        s = ShardedIRS(data, num_shards=2, seed=75, backend="processes",
                       max_workers=2)
        a = s.sample_bulk(0.1, 0.9, 300)
        s.close()
        b = s.sample_bulk(0.1, 0.9, 300)  # republishes snapshots lazily
        assert len(a) == len(b) == 300
        s.close()
        s.close()  # idempotent

    def test_no_segment_leak_after_close(self, data):
        s = ShardedIRS(data, num_shards=2, seed=76, backend="processes",
                       max_workers=2)
        s.sample_bulk(0.1, 0.9, 100)
        assert s._segments
        s.close()
        assert not s._segments


class TestBackendPlumbing:
    def test_make_backend_names(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("threads"), ThreadBackend)
        assert isinstance(make_backend("processes"), ProcessBackend)
        with pytest.raises(ValueError):
            make_backend("gpu")

    def test_backend_instance_passthrough(self, data):
        backend = SerialBackend()
        s = ShardedIRS(data, num_shards=2, seed=77, backend=backend)
        assert s._backend is backend
        assert s.backend_name == "serial"

    def test_thread_backend_single_task_inline(self):
        backend = ThreadBackend(max_workers=2)
        seen = []
        backend.run(seen.append, [1])
        backend.run(seen.append, [2, 3])
        backend.close()
        assert sorted(seen) == [1, 2, 3]


class TestRunnerIntegration:
    def test_runner_uses_scatter_many(self, data):
        s = ShardedIRS(data, num_shards=4, seed=78)
        runner = BatchQueryRunner(s)
        result = runner.run([(0.1, 0.5, 64), (0.5, 0.9, 32), (0.0, 1.0, 16)])
        assert [len(r) for r in result.samples] == [64, 32, 16]
        assert result.stats.queries == 3
        assert s.stats.extra.get("scatter_tasks", 0) > 0

    def test_run_counts_uses_peek(self, data):
        s = ShardedIRS(data, num_shards=4, seed=79)
        runner = BatchQueryRunner(s)
        queries = [(0.1, 0.5), (0.6, 0.7), (2.0, 3.0)]
        assert runner.run_counts(queries) == [s.count(lo, hi) for lo, hi in queries]

    def test_mixed_stream_against_sharded(self, data):
        from repro.batch import BatchOp

        s = ShardedIRS(data, num_shards=4, seed=80)
        runner = BatchQueryRunner(s)
        ops = [
            BatchOp.insert(0.31),
            BatchOp.insert(0.91),
            BatchOp.sample(0.0, 1.0, 32),
            BatchOp.delete(0.31),
            BatchOp.delete(0.91),
        ]
        result = runner.run_mixed(ops)
        assert len(result.samples[2]) == 32
        assert result.stats.extra["updates"] == 4
        assert len(s) == N

    def test_weighted_insert_rejected_on_plain_sharded(self, data):
        from repro.batch import BatchOp
        from repro.errors import InvalidQueryError

        s = ShardedIRS(data, num_shards=2, seed=81)
        runner = BatchQueryRunner(s)
        with pytest.raises(InvalidQueryError):
            runner.run_mixed([BatchOp.insert(0.5, weight=2.0)])
