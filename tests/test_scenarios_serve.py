"""Scenario ops through the server: byte-identical to the direct calls.

The acceptance bar for the scenario tier: every new sampling path —
windowed, stratified, without-replacement, adaptive estimate — must return
the *same bytes* whether invoked directly on the structure or through
:class:`~repro.serve.ReproServer` under a fixed root seed.  The server
delegates to the identical library functions with the identical seed, so
any drift here means a second code path grew — exactly what this suite
exists to catch.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import (
    DynamicIRS,
    ShardedIRS,
    WindowedIRS,
    adaptive_estimate,
    sample_stratified,
    sample_without_replacement_bulk,
)
from repro.serve import ReproServer, ServeClient, ServeError


def run(coro):
    return asyncio.run(coro)


DATA = [float((i * 29) % 2003) for i in range(2000)]
STRATA = [[0.0, 399.0], [400.0, 1299.0], [1300.0, 2002.0]]


def fresh_structures():
    """Twin structure sets: one to serve, one to query directly."""
    return {
        "default": DynamicIRS(DATA, seed=5),
        "sharded": ShardedIRS(DATA, num_shards=4, seed=6),
        "windowed": WindowedIRS(DATA, window=1500, seed=7),
    }


@pytest.mark.parametrize("structure", ["default", "sharded", "windowed"])
def test_stratified_served_matches_direct(structure):
    async def scenario():
        direct = fresh_structures()[structure]
        expected = sample_stratified(
            direct, [tuple(s) for s in STRATA], 90, seed=1111
        )
        async with ReproServer(fresh_structures(), seed=99) as server:
            client = ServeClient(server)
            got = await client.sample_stratified(
                STRATA, 90, structure=structure, seed=1111
            )
        assert got == [[float(x) for x in block] for block in expected]

    run(scenario())


@pytest.mark.parametrize("structure", ["default", "sharded", "windowed"])
def test_sample_wr_served_matches_direct(structure):
    async def scenario():
        direct = fresh_structures()[structure]
        expected = sample_without_replacement_bulk(
            direct, 100.0, 1500.0, 64, seed=2222
        )
        async with ReproServer(fresh_structures(), seed=99) as server:
            client = ServeClient(server)
            got = await client.sample_without_replacement(
                100.0, 1500.0, 64, structure=structure, seed=2222
            )
        assert got == [float(x) for x in expected]
        assert len(set(got)) == 64  # distinct data ⇒ distinct values

    run(scenario())


@pytest.mark.parametrize("structure", ["default", "sharded", "windowed"])
def test_estimate_served_matches_direct(structure):
    async def scenario():
        direct = fresh_structures()[structure]
        expected = adaptive_estimate(
            direct, 0.0, 2002.0, target_half_width=40.0, batch=128, seed=3333
        )
        async with ReproServer(fresh_structures(), seed=99) as server:
            client = ServeClient(server)
            got = await client.estimate(
                0.0, 2002.0, target=40.0, batch=128,
                structure=structure, seed=3333,
            )
        assert got == expected.to_dict()
        assert got["converged"] is True

    run(scenario())


def test_windowed_sample_served_matches_direct_after_updates():
    """The windowed path stays byte-identical through served mutation."""

    async def scenario():
        direct = fresh_structures()["windowed"]
        arrivals = [float(3000 + i) for i in range(400)]
        direct.insert_bulk(arrivals)
        expected = list(direct.sample_bulk(0.0, 5000.0, 50, seed=4444))
        async with ReproServer(fresh_structures(), seed=99) as server:
            client = ServeClient(server)
            assert await client.insert_bulk(arrivals, structure="windowed") == 400
            got = await client.sample(
                0.0, 5000.0, 50, structure="windowed", seed=4444
            )
            # The window slid identically on both sides: the served count
            # sees exactly the direct twin's live window, nothing expired.
            count = await client.count(0.0, 5000.0, structure="windowed")
        assert got == [float(x) for x in expected]
        assert count == direct.count(0.0, 5000.0) == 1500

    run(scenario())


def test_scenario_ops_are_admission_validated():
    async def scenario():
        async with ReproServer(
            fresh_structures(), seed=99, max_t=1 << 12
        ) as server:
            client = ServeClient(server)
            with pytest.raises(ServeError) as err:
                await client.estimate(0.0, 1.0, target=-5.0)
            assert err.value.code == "invalid_query"
            with pytest.raises(ServeError) as err:
                await client.estimate(0.0, 1.0, target=1.0, max_draws=1 << 13)
            assert err.value.code == "too_large"
            with pytest.raises(ServeError) as err:
                await client.sample_stratified([[9.0, 1.0]], 5)
            assert err.value.code == "invalid_query"
            response = await client.request(
                {"op": "stratified", "strata": "nope", "t": 3}
            )
            assert response["ok"] is False
            assert response["error"]["type"] == "bad_request"
            with pytest.raises(ServeError) as err:
                await client.sample_without_replacement(0.0, 3.0, 4000)
            assert err.value.code == "invalid_query"  # t exceeds population

    run(scenario())


def test_unseeded_scenario_ops_draw_fresh_randomness():
    async def scenario():
        async with ReproServer(fresh_structures(), seed=99) as server:
            client = ServeClient(server)
            a = await client.sample_without_replacement(0.0, 2002.0, 32)
            b = await client.sample_without_replacement(0.0, 2002.0, 32)
            assert a != b
            ea = await client.estimate(0.0, 2002.0, target=40.0)
            assert ea["converged"] is True

    run(scenario())


def test_scenario_ops_count_as_sample_requests():
    async def scenario():
        async with ReproServer(fresh_structures(), seed=99) as server:
            client = ServeClient(server)
            await client.sample_stratified(STRATA, 10, seed=1)
            await client.sample_without_replacement(0.0, 2002.0, 10, seed=2)
            await client.estimate(0.0, 2002.0, target=50.0, seed=3)
            stats = await client.server_stats()
        assert stats["sample_requests"] == 3
        assert stats["update_requests"] == 0
        assert stats["samples_returned"] >= 20

    run(scenario())


def test_scenario_replies_survive_the_wire():
    """TCP framing: scenario replies are plain JSON like everything else."""

    async def scenario():
        from repro.serve import TCPServeClient

        async with ReproServer(fresh_structures(), seed=99) as server:
            await server.start_tcp("127.0.0.1", 0)
            async with await TCPServeClient.connect("127.0.0.1", server.port) as tcp:
                blocks = await tcp.sample_stratified(STRATA, 30, seed=77)
                est = await tcp.estimate(0.0, 2002.0, target=50.0, seed=78)
            local = ServeClient(server)
            expected_blocks = await local.sample_stratified(STRATA, 30, seed=77)
            expected_est = await local.estimate(0.0, 2002.0, target=50.0, seed=78)
        assert blocks == expected_blocks
        assert est == expected_est

    run(scenario())
