"""Unit tests for the metrics core and its Prometheus exposition."""

from __future__ import annotations

import math

import pytest
from promparse import PromParseError, parse

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    exponential_buckets,
)


# -- instruments ------------------------------------------------------------


def test_counter_monotone():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 5


def test_counter_pull_valued():
    box = {"n": 0}
    c = Counter().set_function(lambda: box["n"])
    box["n"] = 41
    assert c.value == 41
    box["n"] += 1
    assert c.value == 42


def test_gauge_up_down_and_pull():
    g = Gauge()
    g.set(10)
    g.inc(2)
    g.dec(5)
    assert g.value == 7
    g.set_function(lambda: 3.5)
    assert g.value == 3.5


def test_exponential_buckets():
    bounds = exponential_buckets(0.001, 2.0, 4)
    assert bounds == (0.001, 0.002, 0.004, 0.008)
    assert len(LATENCY_BUCKETS) == 19
    assert all(b < c for b, c in zip(LATENCY_BUCKETS, LATENCY_BUCKETS[1:]))
    for bad in [(0.0, 2.0, 3), (1.0, 1.0, 3), (1.0, 2.0, 0)]:
        with pytest.raises(ValueError):
            exponential_buckets(*bad)


def test_histogram_observation_and_cumulative():
    h = Histogram(bounds=(1.0, 2.0, 4.0))
    for v in [0.5, 1.0, 1.5, 3.0, 100.0]:
        h.observe(v)
    # bisect_left: v <= bound lands in that bound's bucket
    assert h.counts == [2, 1, 1, 1]
    assert h.cumulative() == [2, 3, 4, 5]
    assert h.count == 5
    assert h.sum == pytest.approx(106.0)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=())
    with pytest.raises(ValueError):
        Histogram(bounds=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(bounds=(2.0, 1.0))


# -- families ---------------------------------------------------------------


def test_unlabeled_family_is_its_instrument():
    fam = MetricFamily("x_total", "help", "counter")
    fam.inc(3)
    assert fam.value == 3
    fam.set_function(lambda: 9)
    assert fam.value == 9


def test_labeled_family_children():
    fam = MetricFamily("x_total", "help", "counter", ("kind",))
    fam.labels(kind="a").inc()
    fam.labels(kind="a").inc()
    fam.labels(kind="b").inc()
    assert fam.labels(kind="a").value == 2
    assert fam.labels(kind="b").value == 1
    with pytest.raises(ValueError):
        fam.labels(wrong="a")
    with pytest.raises(ValueError):
        fam.inc()  # labeled family has no implicit child
    fam.remove(kind="b")
    fam.remove(kind="b")  # absent is fine
    assert fam.labels(kind="b").value == 0  # recreated fresh


def test_adopt_checks_type():
    fam = MetricFamily("h", "help", "histogram", ("s",))
    owned = Histogram(bounds=(1.0,))
    owned.observe(0.5)
    fam.adopt(owned, s="one")
    assert fam.labels(s="one") is owned
    with pytest.raises(TypeError):
        fam.adopt(Counter(), s="two")


def test_registry_shape_conflicts():
    reg = MetricsRegistry()
    reg.counter("a_total", "help")
    assert reg.counter("a_total", "help").value == 0  # idempotent get-or-create
    with pytest.raises(ValueError):
        reg.gauge("a_total", "help")
    with pytest.raises(ValueError):
        reg.counter("a_total", "help", ("kind",))
    with pytest.raises(ValueError):
        MetricFamily("x", "help", "not_a_type")
    assert reg.get("a_total") is not None
    assert reg.get("missing") is None


def test_registry_collector_runs_per_render():
    reg = MetricsRegistry()
    calls = []
    reg.register_collector(lambda: calls.append(1))
    reg.counter("a_total", "help").inc()
    reg.render()
    reg.render()
    assert len(calls) == 2


# -- exposition, validated by the strict parser -----------------------------


def test_render_passes_strict_parser():
    reg = MetricsRegistry()
    reg.counter("req_total", "Requests.", ("kind",)).labels(kind="sample").inc(7)
    reg.gauge("depth", "Queue depth.").set(3)
    h = reg.histogram("lat_seconds", "Latency.", buckets=(0.001, 0.01, 0.1))
    h.observe(0.005)
    h.observe(0.5)
    families = parse(reg.render())
    assert set(families) == {"req_total", "depth", "lat_seconds"}
    assert families["req_total"].type == "counter"
    assert families["req_total"].value(kind="sample") == 7
    assert families["depth"].value() == 3
    hist = families["lat_seconds"]
    assert hist.type == "histogram"
    assert hist.value("lat_seconds_count") == 2
    assert hist.value("lat_seconds_sum") == pytest.approx(0.505)
    assert hist.value("lat_seconds_bucket", le="0.01") == 1
    assert hist.value("lat_seconds_bucket", le="+Inf") == 2


def test_label_escaping_round_trips():
    reg = MetricsRegistry()
    nasty = 'a"b\\c\nd'
    reg.counter("esc_total", "Escapes.", ("site",)).labels(site=nasty).inc()
    families = parse(reg.render())
    assert families["esc_total"].label_values("site") == {nasty}


def test_help_escaping():
    reg = MetricsRegistry()
    reg.gauge("g", "line one\nline two \\ done").set(1)
    fam = parse(reg.render())["g"]
    # The parser keeps help text in its escaped wire form.
    assert fam.help == "line one\\nline two \\\\ done"


def test_integer_values_render_integral():
    reg = MetricsRegistry()
    reg.counter("c_total", "help").inc(5)
    reg.gauge("g", "help").set(2.5)
    text = reg.render()
    assert "c_total 5\n" in text
    assert "g 2.5\n" in text


def test_parser_rejects_renderer_regressions():
    # The strict parser is itself under test: each of these would be a
    # renderer bug it must catch.
    with pytest.raises(PromParseError):
        parse("no_newline 1")
    with pytest.raises(PromParseError):
        parse("orphan_sample 1\n")
    with pytest.raises(PromParseError):
        parse("# HELP a h\na 1\n")  # HELP without TYPE
    with pytest.raises(PromParseError):
        parse('# HELP a h\n# TYPE a counter\na{l="x} 1\n')  # unterminated
    with pytest.raises(PromParseError):
        parse("# HELP a h\n# TYPE a counter\na -1\n")  # negative counter
    with pytest.raises(PromParseError):  # non-cumulative buckets
        parse(
            "# HELP h h\n# TYPE h histogram\n"
            'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\nh_sum 1\nh_count 3\n'
        )
    with pytest.raises(PromParseError):  # missing +Inf
        parse(
            "# HELP h h\n# TYPE h histogram\n"
            'h_bucket{le="1"} 1\nh_sum 1\nh_count 1\n'
        )
    with pytest.raises(PromParseError):  # +Inf != count
        parse(
            "# HELP h h\n# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 2\nh_sum 1\nh_count 3\n'
        )
    with pytest.raises(PromParseError):  # duplicate sample
        parse("# HELP a h\n# TYPE a counter\na 1\na 2\n")


def test_parser_accepts_inf_values():
    fam = parse('# HELP g h\n# TYPE g gauge\ng Inf\n'.replace("Inf", "+Inf"))["g"]
    assert math.isinf(fam.value())
