"""The durability tier: WAL framing, snapshots, and the DurableStore loop."""

from __future__ import annotations

import json
import os
import struct
import zlib

import pytest

from repro import DynamicIRS, WeightedDynamicIRS
from repro.batch import BatchOp
from repro.errors import CorruptRecordError, StorageError
from repro.store import (
    DurableStore,
    SnapshotStore,
    WriteAheadLog,
    build_from_sorted,
    snapshot_spec,
)

OPS_A = [("insert", 1.5), ("insert", 2.5), ("delete", 1.5)]
OPS_B = [BatchOp.insert(7.0), BatchOp.delete(2.5)]


def wal_dir(tmp_path):
    return str(tmp_path / "wal")


# -- WAL framing and replay --------------------------------------------------


def test_wal_append_replay_roundtrip(tmp_path):
    with WriteAheadLog(wal_dir(tmp_path)) as wal:
        assert wal.append(OPS_A) == 1
        assert wal.append(OPS_B) == 2
        assert wal.last_seq == 2
        records = list(wal.replay())
    assert [r.seq for r in records] == [1, 2]
    first = records[0].ops
    assert [(op.kind, op.value) for op in first] == [
        ("insert", 1.5), ("insert", 2.5), ("delete", 1.5),
    ]
    assert all(isinstance(op, BatchOp) for op in first)
    assert list(wal.replay(after_seq=1))[0].seq == 2
    assert list(wal.replay(after_seq=2)) == []


def test_wal_reopen_continues_sequence(tmp_path):
    with WriteAheadLog(wal_dir(tmp_path)) as wal:
        wal.append(OPS_A)
    with WriteAheadLog(wal_dir(tmp_path)) as wal:
        assert wal.last_seq == 1
        assert wal.append(OPS_B) == 2
        assert [r.seq for r in wal.replay()] == [1, 2]


def test_wal_rotation_and_truncation(tmp_path):
    with WriteAheadLog(wal_dir(tmp_path), segment_bytes=1) as wal:
        for i in range(5):
            wal.append([("insert", float(i))])
        names = sorted(os.listdir(wal_dir(tmp_path)))
        # segment_bytes=1: every append lands in its own segment.
        assert len(names) == 5
        assert [r.seq for r in wal.replay()] == [1, 2, 3, 4, 5]
        # Everything through seq 3 is covered by a snapshot: segments whose
        # records all fall at or below it are deleted, replay starts past it.
        removed = wal.truncate_through(3)
        assert removed == 3
        assert [r.seq for r in wal.replay()] == [4, 5]
        assert [r.seq for r in wal.replay(after_seq=3)] == [4, 5]
    # The active segment is only removable once the log is closed.
    with WriteAheadLog(wal_dir(tmp_path)) as wal:
        assert wal.last_seq == 5
    reopened = WriteAheadLog(wal_dir(tmp_path))
    reopened.truncate_through(5)
    assert list(reopened.replay()) == []
    reopened.close()


def test_wal_torn_tail_truncated_on_open(tmp_path):
    with WriteAheadLog(wal_dir(tmp_path)) as wal:
        for i in range(3):
            wal.append([("insert", float(i))])
    (name,) = os.listdir(wal_dir(tmp_path))
    path = os.path.join(wal_dir(tmp_path), name)
    with open(path, "r+b") as fh:
        fh.truncate(os.path.getsize(path) - 3)  # tear the last record
    with WriteAheadLog(wal_dir(tmp_path)) as wal:
        assert wal.torn_tail == (name, os.path.getsize(path))
        assert wal.last_seq == 2
        assert [r.seq for r in wal.replay()] == [1, 2]
        # The log keeps accepting appends after healing.
        assert wal.append(OPS_B) == 3
    with WriteAheadLog(wal_dir(tmp_path)) as wal:
        assert wal.torn_tail is None
        assert [r.seq for r in wal.replay()] == [1, 2, 3]


def test_wal_corruption_before_tail_raises(tmp_path):
    with WriteAheadLog(wal_dir(tmp_path), segment_bytes=1) as wal:
        wal.append(OPS_A)
        wal.append(OPS_B)
    first = sorted(os.listdir(wal_dir(tmp_path)))[0]
    path = os.path.join(wal_dir(tmp_path), first)
    raw = bytearray(open(path, "rb").read())
    raw[12] ^= 0xFF  # flip a payload byte in a non-tail segment
    open(path, "wb").write(bytes(raw))
    with pytest.raises(CorruptRecordError):
        WriteAheadLog(wal_dir(tmp_path))


def test_wal_crc_valid_but_unparseable_raises(tmp_path):
    os.makedirs(wal_dir(tmp_path))
    payload = b"definitely not json\n"
    frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
    with open(os.path.join(wal_dir(tmp_path), "wal-0000000000000001.log"), "wb") as fh:
        fh.write(frame)
    with pytest.raises(CorruptRecordError):
        WriteAheadLog(wal_dir(tmp_path))


def test_wal_parameter_validation(tmp_path):
    with pytest.raises(ValueError):
        WriteAheadLog(wal_dir(tmp_path), fsync="sometimes")
    with pytest.raises(ValueError):
        WriteAheadLog(wal_dir(tmp_path), segment_bytes=0)
    with pytest.raises(ValueError):
        WriteAheadLog(wal_dir(tmp_path), sync_every=0)


@pytest.mark.parametrize("fsync", ["always", "batch", "off"])
def test_wal_policies_all_flush_records(tmp_path, fsync):
    with WriteAheadLog(wal_dir(tmp_path) + fsync, fsync=fsync, sync_every=2) as wal:
        for i in range(5):
            wal.append([("insert", float(i))])
        wal.sync()
    with WriteAheadLog(wal_dir(tmp_path) + fsync, fsync=fsync) as wal:
        assert [r.seq for r in wal.replay()] == [1, 2, 3, 4, 5]


def test_wal_segment_is_inspectable_json(tmp_path):
    with WriteAheadLog(wal_dir(tmp_path)) as wal:
        wal.append([("insert", 3.25, "other")])
    (name,) = os.listdir(wal_dir(tmp_path))
    raw = open(os.path.join(wal_dir(tmp_path), name), "rb").read()
    length, crc = struct.unpack_from("<II", raw)
    payload = raw[8 : 8 + length]
    assert zlib.crc32(payload) == crc
    body = json.loads(payload)
    assert body["q"] == 1
    assert body["ops"] == [{"k": "i", "v": 3.25, "s": "other"}]


# -- snapshots ----------------------------------------------------------------


def test_snapshot_save_load_roundtrip(tmp_path):
    store = SnapshotStore(tmp_path / "snaps")
    assert store.latest() is None
    assert store.load() == {}
    structures = {
        "default": DynamicIRS([3.0, 1.0, 2.0], seed=1),
        "weighted": WeightedDynamicIRS([2.0, 1.0], [0.5, 2.0], seed=2),
    }
    store.save(structures, wal_seq=9)
    seq, manifest = store.latest()
    assert seq == 9
    assert set(manifest["structures"]) == {"default", "weighted"}
    loaded = store.load()
    spec, values, weights = loaded["default"]
    assert spec["kind"] == "dynamic" and weights is None
    assert list(values) == [1.0, 2.0, 3.0]
    spec, values, weights = loaded["weighted"]
    assert spec["kind"] == "weighted-dynamic"
    assert list(values) == [1.0, 2.0]
    assert list(weights) == [2.0, 0.5]
    rebuilt = build_from_sorted(spec, values, weights, seed=3)
    assert rebuilt.export_sorted().tolist() == [1.0, 2.0]
    assert rebuilt.peek_weights([(0.0, 5.0)]) == structures["weighted"].peek_weights(
        [(0.0, 5.0)]
    )


def test_snapshot_save_prunes_and_replaces(tmp_path):
    store = SnapshotStore(tmp_path / "snaps")
    d = {"default": DynamicIRS([1.0], seed=1)}
    store.save(d, wal_seq=3)
    store.save(d, wal_seq=8)
    assert [e.name for e in os.scandir(tmp_path / "snaps")] == ["snap-0000000000000008"]
    # Re-publishing the same WAL position replaces in place.
    store.save({"default": DynamicIRS([4.0], seed=1)}, wal_seq=8)
    (_, values, _) = store.load()["default"]
    assert list(values) == [4.0]


def test_snapshot_ignores_tmp_and_junk_dirs(tmp_path):
    store = SnapshotStore(tmp_path / "snaps")
    os.makedirs(tmp_path / "snaps" / "snap-0000000000000009.tmp-1")
    os.makedirs(tmp_path / "snaps" / "snap-nonsense")
    assert store.latest() is None
    store.save({"default": DynamicIRS([1.0], seed=1)}, wal_seq=2)
    assert store.latest()[0] == 2


def test_snapshot_crc_mismatch_raises(tmp_path):
    store = SnapshotStore(tmp_path / "snaps")
    store.save({"default": DynamicIRS([1.0, 2.0], seed=1)}, wal_seq=1)
    snap = tmp_path / "snaps" / "snap-0000000000000001"
    plane = snap / "s0000.values.f8"
    raw = bytearray(plane.read_bytes())
    raw[0] ^= 0xFF
    plane.write_bytes(bytes(raw))
    with pytest.raises(CorruptRecordError):
        store.load()


def test_snapshot_spec_rejects_undescribable_samplers():
    with pytest.raises(StorageError):
        snapshot_spec(object())
    from repro import ShardedIRS

    def custom_shard(values, weights, seed):
        return DynamicIRS.from_sorted(list(values), seed=seed)

    sharded = ShardedIRS([1.0, 2.0], num_shards=2, shard_kind=custom_shard)
    with pytest.raises(StorageError):
        snapshot_spec(sharded)


def test_build_from_sorted_rejects_unknown_kind():
    with pytest.raises(StorageError):
        build_from_sorted({"kind": "quantum", "params": {}}, [1.0])


# -- the durable store loop ---------------------------------------------------


def test_durable_store_log_recover_invariant(tmp_path):
    data_dir = str(tmp_path / "d")
    live = DynamicIRS([1.0, 2.0, 3.0], seed=5)
    with DurableStore(data_dir) as store:
        assert store.log_batch([]) is None
        store.log_batch([("insert", 4.0), ("insert", 5.0)])
        live.insert(4.0)
        live.insert(5.0)
        store.log_batch([("delete", 1.0)])
        live.delete(1.0)
        assert store.ops_since_snapshot == 3
    with DurableStore(data_dir) as store:
        report = store.recover({"default": DynamicIRS([1.0, 2.0, 3.0], seed=5)})
        assert (report.snapshot_seq, report.replayed_records, report.replayed_ops) == (
            0, 2, 3,
        )
        assert report.structures["default"].export_sorted().tolist() == (
            live.export_sorted().tolist()
        )


def test_durable_store_snapshot_truncates_and_resets(tmp_path):
    data_dir = str(tmp_path / "d")
    d = DynamicIRS([1.0], seed=1)
    with DurableStore(data_dir) as store:
        store.log_batch([("insert", 2.0)])
        d.insert(2.0)
        seq = store.snapshot({"default": d})
        assert seq == 1
        assert store.ops_since_snapshot == 0
        store.log_batch([("insert", 3.0)])
        d.insert(3.0)
    with DurableStore(data_dir) as store:
        report = store.recover({"default": DynamicIRS([1.0], seed=1)})
        assert report.snapshot_seq == 1
        assert (report.replayed_records, report.replayed_ops) == (1, 1)
        assert report.structures["default"].export_sorted().tolist() == (
            d.export_sorted().tolist()
        )
        # Replayed-but-unsnapshotted ops still count toward the next trigger.
        assert store.ops_since_snapshot == 1


def test_durable_store_size_trigger(tmp_path):
    with DurableStore(tmp_path / "d", snapshot_ops=3) as store:
        d = DynamicIRS([], seed=1)
        store.log_batch([("insert", 1.0), ("insert", 2.0)])
        d.insert_bulk([1.0, 2.0])
        assert store.maybe_snapshot({"default": d}) is None
        store.log_batch([("insert", 3.0)])
        d.insert(3.0)
        assert store.should_snapshot()
        assert store.maybe_snapshot({"default": d}) == 2


def test_durable_store_replay_tolerates_failed_ops(tmp_path):
    data_dir = str(tmp_path / "d")
    with DurableStore(data_dir) as store:
        # A delete of an absent value failed live (capture_errors on the
        # serving path); replay must fail it identically, not abort.
        store.log_batch([("delete", 99.0), ("insert", 4.0)])
    with DurableStore(data_dir) as store:
        report = store.recover({"default": DynamicIRS([1.0], seed=1)})
        assert report.structures["default"].export_sorted().tolist() == [1.0, 4.0]


def test_durable_store_seeded_recovery_is_deterministic(tmp_path):
    data_dir = str(tmp_path / "d")
    with DurableStore(data_dir) as store:
        store.snapshot({"default": DynamicIRS([float(i) for i in range(64)], seed=1)})

    def recovered_stream():
        with DurableStore(data_dir) as store:
            rep = store.recover({"default": DynamicIRS([], seed=1)}, seed=77)
            return list(rep.structures["default"].sample_bulk(0.0, 63.0, 16))

    assert recovered_stream() == recovered_stream()


def test_durable_store_validates_snapshot_ops(tmp_path):
    with pytest.raises(ValueError):
        DurableStore(tmp_path / "d", snapshot_ops=0)
