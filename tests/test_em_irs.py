"""Tests for ExternalIRS (result R3): correctness and I/O complexity."""

from __future__ import annotations

import math

import pytest

from repro import EmptyRangeError, ExternalIRS
from repro.stats import uniformity_test


def build(n=20_000, block_size=256, seed=5, **kwargs) -> ExternalIRS:
    values = [float(i) for i in range(n)]
    return ExternalIRS(values, block_size=block_size, seed=seed, **kwargs)


class TestCorrectness:
    def test_count_report(self):
        e = build(n=5000)
        assert e.count(10.0, 19.0) == 10
        assert e.report(10.0, 12.0) == [10.0, 11.0, 12.0]
        assert e.count(-5.0, -1.0) == 0

    def test_samples_in_range_small_k(self):
        e = build(n=5000, block_size=256)
        samples = e.sample(100.0, 150.0, 300)  # K=51 <= B: direct path
        assert len(samples) == 300
        assert all(100.0 <= v <= 150.0 for v in samples)

    def test_samples_in_range_large_k(self):
        e = build(n=20_000, block_size=256)
        samples = e.sample(1000.0, 18_000.0, 500)  # buffered path
        assert len(samples) == 500
        assert all(1000.0 <= v <= 18_000.0 for v in samples)

    def test_empty_range(self):
        e = build(n=100)
        with pytest.raises(EmptyRangeError):
            e.sample(1000.0, 2000.0, 1)
        assert e.sample(1000.0, 2000.0, 0) == []

    def test_uniformity_buffered_path(self):
        e = build(n=4096, block_size=64, seed=9)
        lo, hi = 99.5, 3599.5
        samples = e.sample(lo, hi, 30_000)
        population = [float(i) for i in range(100, 3600)]
        # Bin into 50 equal rank buckets for a well-posed chi-square.
        bins = 50
        width = len(population) / bins
        counts = [0] * bins
        for v in samples:
            counts[min(bins - 1, int((v - 100.0) / width))] += 1
        from repro.stats import chi_square_gof

        _stat, p = chi_square_gof(counts, [1.0] * bins)
        assert p > 1e-4

    def test_uniformity_direct_path(self):
        e = build(n=4096, block_size=512, seed=10)
        samples = e.sample(0.5, 100.5, 20_000)
        _stat, p = uniformity_test(samples, [float(i) for i in range(1, 101)])
        assert p > 1e-4

    def test_cross_query_freshness(self):
        """Two identical queries must not replay the same sample stream."""
        e = build(n=20_000, seed=11)
        first = e.sample(1000.0, 19_000.0, 64)
        second = e.sample(1000.0, 19_000.0, 64)
        assert first != second


class TestIOComplexity:
    def test_search_io_is_log_b(self):
        e = build(n=32_768, block_size=32)
        e.pool.clear()
        before = e.device.stats.snapshot()
        e.count(5.0, 6.0)
        delta = e.io_delta(before)
        height = math.ceil(math.log(32_768 / 32, 32)) + 1
        assert delta.reads <= 2 * (height + 1)

    def test_amortized_sample_cost_is_t_over_b(self):
        """Across many queries, I/O per sample must be ≪ 1 (≈ c/B)."""
        e = build(n=65_536, block_size=256, seed=12)
        total_samples = 0
        before = e.device.stats.snapshot()
        for i in range(40):
            lo = float(1000 + 37 * i)
            hi = lo + 40_000.0
            total_samples += len(e.sample(lo, hi, 500))
        delta = e.io_delta(before)
        per_sample = delta.total / total_samples
        # Direct per-sample probing would pay ~1 read per sample; the
        # buffered structure must be at least 5x cheaper even counting
        # searches and refills.
        assert per_sample < 0.2, f"I/O per sample too high: {per_sample:.3f}"

    def test_refills_amortize(self):
        e = build(n=16_384, block_size=128, seed=13)
        for _ in range(30):
            e.sample(100.0, 16_000.0, 400)
        refills = e.stats.extra.get("refills", 0)
        # 12k samples at ~16k-entry buffers: a handful of refills at most.
        assert refills <= 8

    def test_buffer_space_accounting(self):
        e = build(n=8192, block_size=128, seed=14)
        assert e.buffer_blocks == 0  # lazy until first buffered query
        e.sample(10.0, 8000.0, 10)
        assert e.buffer_blocks > 0

    def test_rejection_rate_bounded(self):
        e = build(n=32_768, block_size=128, seed=15)
        e.stats.reset()
        t = 2000
        e.sample(5000.0, 9000.0, t)  # K=4001 spans two 4096-pieces
        # Expected trials per sample <= 4 (DESIGN.md); allow generous slack.
        assert e.stats.rejections < 8 * t


class TestAblationKnobs:
    def test_buffer_factor_shrinks_buffers(self):
        small = build(n=8192, block_size=128, seed=16, buffer_factor=0.25)
        big = build(n=8192, block_size=128, seed=16, buffer_factor=1.0)
        for e in (small, big):
            # Enough pops to walk the geometric fill schedule to its ceiling.
            for _ in range(10):
                e.sample(10.0, 8000.0, 2000)
        assert small.buffer_blocks < big.buffer_blocks

    def test_geometric_fill_starts_small(self):
        e = build(n=65_536, block_size=128, seed=18)
        e.sample(10.0, 60_000.0, 4)  # one cold query, tiny t
        # A full-length buffer for the touched piece would be 512+ blocks;
        # the geometric schedule must start at a handful.
        assert e.buffer_blocks <= 16

    def test_min_level_raised(self):
        e = build(n=8192, block_size=64, seed=17, min_level=9)
        assert e.min_level == 9
        samples = e.sample(10.0, 8000.0, 100)
        assert len(samples) == 100
