"""Seed-determinism audit: every sampler × path, byte-identical across runs.

``seedaudit.py`` fingerprints every sampler kind through every sampling
path (scalar, seeded bulk, stratified, without-replacement, served) under
one fixed root seed.  This suite runs it in two *fresh* Python processes —
fresh hash randomization, fresh module state, fresh event loops — and
asserts the fingerprints agree entry by entry.  Any path that leaks
process-local state into its draws fails here with the exact
``kind/path`` name attached.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

import seedaudit

_HERE = os.path.dirname(os.path.abspath(__file__))
_SCRIPT = os.path.join(_HERE, "seedaudit.py")

EXPECTED_KEYS = sorted(
    [f"{kind}/{path}" for kind in seedaudit.build_factories()
     for path in ("scalar", "bulk", "stratified", "served")]
    + [f"{kind}/without-replacement"
       for kind in ("static", "dynamic", "sharded", "windowed")]
)


def _run_audit() -> dict[str, str]:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(_HERE), "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [sys.executable, _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        timeout=300,
    )
    return json.loads(proc.stdout)


@pytest.fixture(scope="module")
def audits():
    return _run_audit(), _run_audit()


def test_audit_covers_every_kind_and_path(audits):
    first, _second = audits
    assert sorted(first) == EXPECTED_KEYS


@pytest.mark.parametrize("key", EXPECTED_KEYS)
def test_fingerprints_agree_across_fresh_processes(audits, key):
    first, second = audits
    assert first[key] == second[key], (
        f"{key} drew different values in two fresh processes under the "
        "same root seed"
    )
