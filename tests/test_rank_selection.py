"""Tests for DynamicIRS rank selection and exact dynamic WoR sampling."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DynamicIRS, InvalidQueryError
from repro.stats import chi_square_gof


class TestSelectInRange:
    def test_matches_report(self):
        rng = random.Random(1)
        values = [rng.uniform(0, 100) for _ in range(3000)]
        d = DynamicIRS(values, seed=2)
        lo, hi = 20.0, 70.0
        expected = d.report(lo, hi)
        ranks = list(range(len(expected)))
        assert d.select_in_range(lo, hi, ranks) == expected

    def test_unsorted_and_repeated_ranks(self):
        d = DynamicIRS([float(i) for i in range(100)], seed=3)
        assert d.select_in_range(10.0, 50.0, [5, 0, 5, 40]) == [15.0, 10.0, 15.0, 50.0]

    def test_single_chunk_range(self):
        d = DynamicIRS([float(i) for i in range(100)], seed=4)
        assert d.select_in_range(3.0, 5.0, [0, 1, 2]) == [3.0, 4.0, 5.0]

    def test_out_of_bounds_rank(self):
        d = DynamicIRS([1.0, 2.0], seed=5)
        with pytest.raises(InvalidQueryError):
            d.select_in_range(0.0, 5.0, [2])
        with pytest.raises(InvalidQueryError):
            d.select_in_range(0.0, 5.0, [-1])

    def test_empty_ranks(self):
        d = DynamicIRS([1.0], seed=6)
        assert d.select_in_range(0.0, 5.0, []) == []

    def test_kth_in_range(self):
        d = DynamicIRS([float(i) for i in range(50)], seed=7)
        assert d.kth_in_range(10.0, 40.0, 0) == 10.0
        assert d.kth_in_range(10.0, 40.0, 30) == 40.0

    @given(
        data=st.lists(st.integers(0, 30), min_size=1, max_size=100),
        lo=st.integers(0, 30),
        width=st.integers(0, 30),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_full_selection_equals_report(self, data, lo, width):
        values = [float(v) for v in data]
        hi = float(lo + width)
        d = DynamicIRS(values, seed=8)
        expected = d.report(lo, hi)
        got = d.select_in_range(lo, hi, list(range(len(expected))))
        assert got == expected


class TestDynamicWoR:
    def test_distinct_by_rank_with_duplicates(self):
        d = DynamicIRS([2.0, 2.0, 2.0, 5.0], seed=9)
        out = d.sample_without_replacement(0.0, 9.0, 4)
        assert sorted(out) == [2.0, 2.0, 2.0, 5.0]

    def test_too_many_raises(self):
        d = DynamicIRS([1.0, 2.0], seed=10)
        with pytest.raises(InvalidQueryError):
            d.sample_without_replacement(0.0, 5.0, 3)

    def test_zero(self):
        d = DynamicIRS([1.0], seed=11)
        assert d.sample_without_replacement(0.0, 5.0, 0) == []

    def test_subsets_uniform(self):
        d = DynamicIRS([float(i) for i in range(5)], seed=12)
        counts: Counter[frozenset] = Counter()
        for _ in range(15_000):
            counts[frozenset(d.sample_without_replacement(0.0, 4.0, 2))] += 1
        assert len(counts) == 10
        _stat, p = chi_square_gof(list(counts.values()), [1.0] * 10)
        assert p > 1e-4

    def test_wrapper_dispatches_to_rank_path(self):
        from repro import sample_without_replacement
        from repro.rng import RandomSource

        d = DynamicIRS([2.0, 2.0, 3.0], seed=13)
        out = sample_without_replacement(d, 0.0, 9.0, 3, rng=RandomSource(14))
        assert sorted(out) == [2.0, 2.0, 3.0]

    def test_after_updates(self):
        d = DynamicIRS([float(i) for i in range(2000)], seed=15)
        for i in range(0, 2000, 2):
            d.delete(float(i))
        out = d.sample_without_replacement(100.0, 1900.0, 50)
        assert len(set(out)) == 50
        assert all(100.0 <= v <= 1900.0 and v % 2 == 1 for v in out)
