"""Randomness-budget tests: expected O(1) primitive draws per sample.

The paper's per-sample costs are driven by how much fresh randomness a
sample needs.  RandomSource counts primitive draws, so these tests pin the
budgets down: exact for the deterministic paths, bounded for the rejection
paths.
"""

from __future__ import annotations

from repro import DynamicIRS, ExternalIRS, StaticIRS, WeightedStaticIRS
from repro.rng import ScriptedSource


class TestStaticBudget:
    def test_exactly_one_draw_per_sample(self):
        s = StaticIRS([float(i) for i in range(1000)], seed=1)
        before = s._rng.draws
        s.sample(10.0, 900.0, 250)
        assert s._rng.draws - before == 250


class TestWeightedBudget:
    def test_two_draws_per_alias_level(self):
        """Top alias + node alias, two primitive draws each: 4 per sample."""
        n = 1024
        w = WeightedStaticIRS(
            [float(i) for i in range(n)], [1.0 + i % 3 for i in range(n)], seed=2
        )
        before = w._rng.draws
        w.sample(10.0, 1000.0, 100)
        assert w._rng.draws - before == 4 * 100


class TestDynamicBudget:
    def test_expected_constant_draws(self):
        d = DynamicIRS([float(i) for i in range(50_000)], seed=3)
        before = d._rng.draws
        t = 4000
        d.sample(100.5, 49_000.5, t)
        per_sample = (d._rng.draws - before) / t
        # 1 part draw + expected O(1) rejection probes on the PMA path.
        assert per_sample < 6.0, per_sample

    def test_cumulative_path_single_draw(self):
        """Narrow middles resolve the part draw itself — 1 draw/sample."""
        d = DynamicIRS([float(i) for i in range(2000)], seed=4)
        s, cap = d.chunk_size_bounds
        lo, hi = 0.5, 0.5 + 6 * cap  # a handful of chunks → cumulative mode
        before = d._rng.draws
        d.sample(lo, hi, 300)
        assert d._rng.draws - before == 300


class TestExternalBudget:
    def test_bounded_draws_per_sample(self):
        e = ExternalIRS([float(i) for i in range(32_768)], block_size=128, seed=5)
        e.sample(100.0, 32_000.0, 2000)  # warm buffers (refills draw in bulk)
        before = e._rng.draws
        t = 2000
        e.sample(100.0, 32_000.0, t)
        consumed = e._rng.draws - before
        # Per sample: one piece-choice draw + expected O(1) buffer pops; a
        # refill draws its whole batch at once, amortized over later pops.
        assert consumed / t < 40.0


class TestScriptedPaths:
    """Force specific rejection branches deterministically."""

    def test_dynamic_rejection_probe_then_accept(self):
        d = DynamicIRS([float(i) for i in range(60_000)], seed=6)
        plan = d._plan(10.5, 59_000.5)
        assert plan is not None
        _total, a, _la, _k_left, k_mid, b, _k_r = plan
        assert k_mid > 0
        middle = d._middle_plan(a + 1, b - 1, 1)
        assert middle.mode == "rejection"
        # Script: the first probes land on slots past the chunk fill and are
        # rejected, then the fallback RNG takes over and terminates the loop.
        rng = ScriptedSource([0.999999] * 3, seed=7)
        value = middle.sample_draw(rng.randbelow_fn(), d.stats)
        mid_lo = d._chunks[a + 1].data[0]
        mid_hi = d._chunks[b - 1].data[-1]
        assert mid_lo <= value <= mid_hi

    def test_static_scripted_is_deterministic(self):
        s = StaticIRS([float(i) for i in range(100)], seed=8)
        s._rng = ScriptedSource([0.0, 0.5, 0.999], seed=9)
        assert s.sample(0.0, 99.0, 3) == [0.0, 50.0, 99.0]
