"""Unit + statistical tests for the dynamic weighted sampler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alias import DynamicWeightedSampler
from repro.errors import (
    EmptyStructureError,
    InvalidWeightError,
    KeyNotFoundError,
)
from repro.rng import RandomSource
from repro.stats import chi_square_gof


def make(items: dict) -> DynamicWeightedSampler:
    sampler = DynamicWeightedSampler()
    for key, weight in items.items():
        sampler.insert(key, weight)
    return sampler


class TestMutation:
    def test_insert_and_len(self):
        sampler = make({"a": 1.0, "b": 2.0})
        assert len(sampler) == 2
        assert "a" in sampler and "c" not in sampler

    def test_duplicate_insert_rejected(self):
        sampler = make({"a": 1.0})
        with pytest.raises(KeyNotFoundError):
            sampler.insert("a", 2.0)

    def test_invalid_weights_rejected(self):
        sampler = DynamicWeightedSampler()
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(InvalidWeightError):
                sampler.insert("x", bad)

    def test_delete_removes(self):
        sampler = make({"a": 1.0, "b": 2.0})
        sampler.delete("a")
        assert len(sampler) == 1
        assert "a" not in sampler
        with pytest.raises(KeyNotFoundError):
            sampler.delete("a")

    def test_update_weight(self):
        sampler = make({"a": 1.0})
        sampler.update_weight("a", 8.0)
        assert sampler.weight_of("a") == 8.0

    def test_update_weight_same_bucket_fast_path(self):
        # 1.0 and 1.75 share the [2^0, 2^1) bucket: the item list must stay
        # untouched while weights and totals adjust in place.
        sampler = make({"a": 1.0, "b": 1.25, "c": 4.0})
        bucket = sampler._buckets[0]
        items_before = list(bucket.items)
        sampler.update_weight("a", 1.75)
        assert list(bucket.items) == items_before
        assert sampler.weight_of("a") == 1.75
        assert bucket.total == pytest.approx(3.0)
        assert sampler.total_weight == pytest.approx(7.0)

    def test_update_weight_crossing_buckets_rebuckets(self):
        sampler = make({"a": 1.0, "b": 1.5})
        sampler.update_weight("a", 8.0)  # bucket 0 -> bucket 3
        assert 0 in sampler._buckets and 3 in sampler._buckets
        assert sampler._scale_of["a"] == 3
        assert sampler.total_weight == pytest.approx(9.5)

    def test_update_weight_missing_key(self):
        sampler = make({"a": 1.0})
        with pytest.raises(KeyNotFoundError):
            sampler.update_weight("zzz", 2.0)

    def test_update_weight_invalid_leaves_sampler_intact(self):
        # Regression: the delete+insert form removed the key, then raised on
        # the bad weight, leaving it half-deleted.
        sampler = make({"a": 1.0, "b": 2.0})
        for bad in (0.0, -3.0, float("nan"), float("inf")):
            with pytest.raises(InvalidWeightError):
                sampler.update_weight("a", bad)
        assert "a" in sampler
        assert sampler.weight_of("a") == 1.0
        assert sampler.total_weight == pytest.approx(3.0)

    def test_distribution_after_same_bucket_updates(self):
        from repro.stats import chi_square_gof

        sampler = make({i: 1.0 for i in range(6)})
        targets = {i: 1.0 + i / 8.0 for i in range(6)}  # all stay in bucket 0
        for key, weight in targets.items():
            sampler.update_weight(key, weight)
        rng = RandomSource(9)
        counts = [0] * 6
        for _ in range(30_000):
            counts[sampler.sample(rng)] += 1
        _stat, p = chi_square_gof(counts, [targets[i] for i in range(6)])
        assert p > 1e-4

    def test_total_weight_tracks(self):
        sampler = make({"a": 1.5, "b": 2.5})
        assert sampler.total_weight == pytest.approx(4.0)
        sampler.delete("b")
        assert sampler.total_weight == pytest.approx(1.5)

    def test_sample_empty_raises(self):
        with pytest.raises(EmptyStructureError):
            DynamicWeightedSampler().sample(RandomSource(0))


class TestDistribution:
    def test_proportional_sampling(self):
        weights = {i: float(i + 1) for i in range(8)}
        sampler = make(weights)
        rng = RandomSource(1)
        counts = [0] * 8
        for _ in range(36_000):
            counts[sampler.sample(rng)] += 1
        _stat, p = chi_square_gof(counts, [weights[i] for i in range(8)])
        assert p > 1e-4

    def test_distribution_after_updates(self):
        sampler = make({i: 1.0 for i in range(8)})
        for i in range(4):
            sampler.delete(i)
        sampler.update_weight(4, 5.0)
        rng = RandomSource(2)
        counts = {i: 0 for i in (4, 5, 6, 7)}
        for _ in range(16_000):
            counts[sampler.sample(rng)] += 1
        _stat, p = chi_square_gof(
            [counts[4], counts[5], counts[6], counts[7]], [5.0, 1.0, 1.0, 1.0]
        )
        assert p > 1e-4

    def test_wide_weight_scales(self):
        sampler = make({"tiny": 1e-9, "mid": 1.0, "huge": 1e9})
        rng = RandomSource(3)
        picks = [sampler.sample(rng) for _ in range(2000)]
        assert picks.count("huge") == 2000

    @given(
        st.dictionaries(
            st.integers(0, 30),
            st.floats(min_value=0.01, max_value=100.0),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_weight_bookkeeping_is_exact(self, items):
        sampler = make(items)
        for key, weight in items.items():
            assert sampler.weight_of(key) == weight
        assert sampler.total_weight == pytest.approx(sum(items.values()))
