"""Tests for the EM substrate: device, pool, sorted file, B-tree."""

from __future__ import annotations

import math

import pytest

from repro.em import BlockDevice, BufferPool, EMBTree, EMSortedFile
from repro.errors import CapacityError


class TestBlockDevice:
    def test_allocate_write_read_roundtrip(self):
        device = BlockDevice(4)
        bid = device.allocate()
        device.write(bid, [1, 2, 3])
        assert device.read(bid) == [1, 2, 3]
        assert device.stats.reads == 1 and device.stats.writes == 1

    def test_block_size_enforced(self):
        device = BlockDevice(2)
        bid = device.allocate()
        with pytest.raises(CapacityError):
            device.write(bid, [1, 2, 3])

    def test_min_block_size(self):
        with pytest.raises(CapacityError):
            BlockDevice(1)

    def test_unallocated_write_rejected(self):
        device = BlockDevice(4)
        with pytest.raises(KeyError):
            device.write(5, [1])

    def test_free_and_space_accounting(self):
        device = BlockDevice(4)
        bids = [device.allocate() for _ in range(5)]
        assert device.blocks_in_use == 5
        device.free(bids[0])
        assert device.blocks_in_use == 4
        assert device.stats.freed == 1

    def test_sequential_detection(self):
        device = BlockDevice(4)
        bids = [device.allocate() for _ in range(4)]
        for bid in bids:
            device.write(bid, [bid])
        for bid in bids:
            device.read(bid)
        # Reads of blocks 1,2,3 follow 0,1,2 → three sequential reads.
        assert device.stats.sequential_reads == 3

    def test_snapshot_delta(self):
        device = BlockDevice(4)
        bid = device.allocate()
        device.write(bid, [1])
        before = device.stats.snapshot()
        device.read(bid)
        delta = device.stats.delta(before)
        assert delta.reads == 1 and delta.writes == 0
        assert delta.total == 1


class TestBufferPool:
    def _device_with_blocks(self, count):
        device = BlockDevice(4)
        bids = []
        for i in range(count):
            bid = device.allocate()
            device.write(bid, [i])
            bids.append(bid)
        return device, bids

    def test_hit_avoids_device_read(self):
        device, bids = self._device_with_blocks(1)
        pool = BufferPool(device, capacity=2)
        pool.get(bids[0])
        reads = device.stats.reads
        pool.get(bids[0])
        assert device.stats.reads == reads
        assert pool.hits == 1 and pool.misses == 1

    def test_lru_eviction_order(self):
        device, bids = self._device_with_blocks(3)
        pool = BufferPool(device, capacity=2)
        pool.get(bids[0])
        pool.get(bids[1])
        pool.get(bids[0])  # 1 is now least recent
        pool.get(bids[2])  # evicts 1
        reads = device.stats.reads
        pool.get(bids[0])  # still cached
        assert device.stats.reads == reads
        pool.get(bids[1])  # must re-read
        assert device.stats.reads == reads + 1

    def test_writeback_on_eviction(self):
        device, bids = self._device_with_blocks(3)
        pool = BufferPool(device, capacity=1)
        pool.put(bids[0], [99])
        assert device.read(bids[0]) == [0]  # not flushed yet
        pool.get(bids[1])  # evicts and writes back
        assert device.read(bids[0]) == [99]

    def test_flush(self):
        device, bids = self._device_with_blocks(1)
        pool = BufferPool(device, capacity=4)
        pool.put(bids[0], [42])
        pool.flush()
        assert device.read(bids[0]) == [42]

    def test_invalidate_discards_dirty(self):
        device, bids = self._device_with_blocks(1)
        pool = BufferPool(device, capacity=4)
        pool.put(bids[0], [42])
        pool.invalidate(bids[0])
        pool.flush()
        assert device.read(bids[0]) == [0]

    def test_capacity_validation(self):
        device, _ = self._device_with_blocks(1)
        with pytest.raises(ValueError):
            BufferPool(device, capacity=0)

    def test_hit_rate(self):
        device, bids = self._device_with_blocks(1)
        pool = BufferPool(device, capacity=2)
        pool.get(bids[0])
        pool.get(bids[0])
        assert pool.hit_rate == pytest.approx(0.5)


class TestEMSortedFile:
    def _build(self, values, block_size=4, pool_capacity=8):
        device = BlockDevice(block_size)
        pool = BufferPool(device, pool_capacity)
        return EMSortedFile(pool, values)

    def test_requires_sorted_input(self):
        with pytest.raises(ValueError):
            self._build([2.0, 1.0])

    def test_block_packing(self):
        f = self._build([float(i) for i in range(10)], block_size=4)
        assert len(f.block_ids) == 3
        assert len(f) == 10

    def test_get_by_rank(self):
        values = [float(i) * 2 for i in range(25)]
        f = self._build(values)
        for rank in (0, 3, 4, 11, 24):
            assert f.get(rank) == values[rank]
        with pytest.raises(IndexError):
            f.get(25)
        with pytest.raises(IndexError):
            f.get(-1)

    def test_scan(self):
        values = [float(i) for i in range(30)]
        f = self._build(values, block_size=7)
        assert list(f.scan(5, 23)) == values[5:23]
        assert list(f.scan(-5, 100)) == values
        assert list(f.scan(10, 10)) == []

    def test_empty_file(self):
        f = self._build([])
        assert len(f) == 0
        assert list(f.scan(0, 10)) == []


class TestEMBTree:
    def _tree(self, values, block_size=8):
        device = BlockDevice(block_size)
        pool = BufferPool(device, 64)
        data = EMSortedFile(pool, sorted(values))
        return EMBTree(data), device

    def test_rank_queries_match_bisect(self):
        import bisect

        values = sorted(float(i % 50) for i in range(500))
        tree, _device = self._tree(values)
        for key in [-1.0, 0.0, 12.0, 12.5, 49.0, 100.0]:
            assert tree.rank_left(key) == bisect.bisect_left(values, key)
            assert tree.rank_right(key) == bisect.bisect_right(values, key)

    def test_duplicates_spanning_blocks(self):
        values = [1.0] * 20 + [2.0] * 20 + [3.0] * 20
        tree, _device = self._tree(values, block_size=4)
        assert tree.rank_left(2.0) == 20
        assert tree.rank_right(2.0) == 40
        assert tree.rank_range(2.0, 2.0) == (20, 40)

    def test_io_cost_is_logarithmic(self):
        values = [float(i) for i in range(4096)]
        tree, device = self._tree(values, block_size=16)
        tree.pool.clear()
        before = device.stats.snapshot()
        tree.rank_left(2048.0)
        delta = device.stats.delta(before)
        height = math.ceil(math.log(4096 / 16, 16)) + 1
        assert delta.reads <= height + 1

    def test_empty_tree(self):
        tree, _device = self._tree([])
        assert tree.rank_left(1.0) == 0
        assert tree.rank_right(1.0) == 0

    def test_single_block(self):
        tree, _device = self._tree([1.0, 2.0, 3.0])
        assert tree.height == 0
        assert tree.rank_range(1.5, 2.5) == (1, 2)
