"""Coalescing edge cases and the batch-runner features serving rides on."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import (
    BatchOp,
    BatchQuery,
    BatchQueryRunner,
    DynamicIRS,
    ShardedIRS,
    StaticIRS,
)
from repro.errors import (
    EmptyRangeError,
    InvalidQueryError,
    KeyNotFoundError,
)
from repro.serve import ReproServer, ServeClient
from repro.workloads import gaussian_mixture


def run(coro):
    return asyncio.run(coro)


DATA = sorted(gaussian_mixture(3000, clusters=3, seed=21))
LO, HI = DATA[len(DATA) // 10], DATA[(9 * len(DATA)) // 10]


# -- server-side coalescing edges -------------------------------------------


def test_empty_window_flush_single_request():
    """A lone request in a window still flushes as a batch of one."""

    async def main():
        async with ReproServer(
            StaticIRS(DATA, seed=1), window=0.005, max_batch=256
        ) as server:
            client = ServeClient(server)
            samples = await client.sample(LO, HI, 4)
            assert len(samples) == 4
            assert server.stats.batches == 1
            assert server.stats.coalesce_factor == 1.0

    run(main())


def test_window_zero_never_coalesces():
    async def main():
        async with ReproServer(StaticIRS(DATA, seed=1), window=0.0) as server:
            client = ServeClient(server)
            await client.pipeline(
                [{"op": "count", "lo": LO, "hi": HI} for _ in range(10)]
            )
            assert server.stats.batches >= 1
            # Batches may still pick up already-queued requests, but a zero
            # window must not *wait* for company; with an in-process
            # pipeline every request is queued up front, so allow grouping
            # yet require the pipeline to finish (this is a liveness test).

    run(main())


def test_pipelined_requests_share_batches():
    async def main():
        async with ReproServer(
            StaticIRS(DATA, seed=1), window=0.02, max_batch=64
        ) as server:
            client = ServeClient(server)
            responses = await client.pipeline(
                [{"op": "sample", "lo": LO, "hi": HI, "t": 2}] * 32
            )
            assert all(r["ok"] for r in responses)
            assert server.stats.coalesce_factor > 4.0

    run(main())


def test_max_batch_splits_bursts():
    async def main():
        async with ReproServer(
            StaticIRS(DATA, seed=1), window=0.02, max_batch=8
        ) as server:
            client = ServeClient(server)
            await client.pipeline(
                [{"op": "count", "lo": LO, "hi": HI} for _ in range(32)]
            )
            assert server.stats.batches >= 4
            assert server.stats.coalesce_factor <= 8.0

    run(main())


def test_oversized_single_request_executes_alone():
    """A request bigger than the whole sample budget still gets served."""

    async def main():
        async with ReproServer(
            StaticIRS(DATA, seed=1),
            window=0.02,
            max_batch=256,
            max_batch_samples=100,
            max_t=100_000,
        ) as server:
            client = ServeClient(server)
            big = client.sample(LO, HI, 5000)  # cost 50x the batch budget
            small = [client.count(LO, HI) for _ in range(3)]
            results = await asyncio.gather(big, *small)
            assert len(results[0]) == 5000
            assert all(isinstance(k, int) for k in results[1:])

    run(main())


def test_mixed_read_write_ordering_preserved():
    """Reads observe exactly the writes admitted before them."""

    async def main():
        async with ReproServer(
            DynamicIRS(DATA, seed=1), window=0.01, max_batch=256
        ) as server:
            client = ServeClient(server)
            marker = HI + 1000.0
            responses = await client.pipeline(
                [
                    {"op": "count", "lo": marker, "hi": marker},
                    {"op": "insert", "value": marker},
                    {"op": "count", "lo": marker, "hi": marker},
                    {"op": "insert_bulk", "values": [marker, marker]},
                    {"op": "count", "lo": marker, "hi": marker},
                    {"op": "delete", "value": marker},
                    {"op": "count", "lo": marker, "hi": marker},
                    {"op": "delete_bulk", "values": [marker, marker]},
                    {"op": "count", "lo": marker, "hi": marker},
                ]
            )
            counts = [r["result"] for r in responses if r["id"] % 2 == 1]
            assert [r["ok"] for r in responses] == [True] * 9
            assert counts == [0, 1, 3, 2, 0]

    run(main())


def test_one_bad_request_does_not_fail_its_batchmates():
    async def main():
        async with ReproServer(
            DynamicIRS(DATA, seed=1), window=0.01, max_batch=256
        ) as server:
            client = ServeClient(server)
            responses = await client.pipeline(
                [
                    {"op": "sample", "lo": LO, "hi": HI, "t": 2},
                    {"op": "delete", "value": 1e12},  # fails: not present
                    {"op": "sample", "lo": 1e9, "hi": 2e9, "t": 1},  # empty
                    {"op": "sample", "lo": LO, "hi": HI, "t": 2},
                ]
            )
            assert responses[0]["ok"] and responses[3]["ok"]
            assert responses[1]["error"]["type"] == "key_not_found"
            assert responses[2]["error"]["type"] == "empty_range"
            # The failing batch was nevertheless one coalesced execution.
            assert server.stats.batches == 1

    run(main())


def test_client_disconnect_mid_batch_keeps_server_alive():
    async def main():
        server = ReproServer(
            StaticIRS(DATA, seed=1), window=0.05, max_batch=256
        )
        await server.start_tcp(port=0)
        # The rude client fires requests and hangs up before any reply can
        # arrive (the 50 ms window guarantees the batch is still forming).
        _reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        for i in range(5):
            writer.write(
                (json.dumps({"op": "count", "lo": LO, "hi": HI, "id": i}) + "\n").encode()
            )
        await writer.drain()
        writer.close()
        # A polite client on a fresh connection still gets served.
        from repro.serve import TCPServeClient

        polite = await TCPServeClient.connect("127.0.0.1", server.port)
        assert isinstance(await polite.count(LO, HI), int)
        for _ in range(50):
            if server.stats.dropped_replies >= 5:
                break
            await asyncio.sleep(0.01)
        assert server.stats.dropped_replies >= 5
        await polite.aclose()
        await server.aclose()

    run(main())


def test_latency_percentiles_reported():
    async def main():
        async with ReproServer(StaticIRS(DATA, seed=1), window=0.001) as server:
            client = ServeClient(server)
            await client.pipeline(
                [{"op": "count", "lo": LO, "hi": HI} for _ in range(20)]
            )
            stats = await client.server_stats()
            lat = stats["latency_ms"]
            assert 0.0 <= lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]
            assert stats["requests_per_second"] > 0.0

    run(main())


def test_exotic_client_seeds_cannot_poison_a_batch():
    """Negative / >64-bit seeds fold into the seed domain at admission."""

    async def main():
        async with ReproServer(StaticIRS(DATA, seed=1), window=0.01) as server:
            client = ServeClient(server)
            responses = await client.pipeline(
                [
                    {"op": "sample", "lo": LO, "hi": HI, "t": 2, "seed": -1},
                    {"op": "sample", "lo": LO, "hi": HI, "t": 2, "seed": 1 << 70},
                    {"op": "sample", "lo": LO, "hi": HI, "t": 2},
                ]
            )
            assert all(r["ok"] for r in responses), responses

    run(main())


def test_non_finite_stored_values_rejected_at_admission():
    async def main():
        async with ReproServer(DynamicIRS(DATA, seed=1)) as server:
            client = ServeClient(server)
            for payload in [
                {"op": "insert", "value": float("inf")},
                {"op": "insert_bulk", "values": [1.0, float("-inf")]},
                {"op": "insert", "value": 1.0, "weight": float("inf")},
            ]:
                response = await client.request(payload)
                assert response["error"]["type"] == "bad_request", payload
            # Infinite *query bounds* stay legal (full-range queries).
            full = await client.count(float("-inf"), float("inf"))
            assert full == len(DATA)

    run(main())


def test_shutdown_resolves_the_forming_batch():
    """aclose() must answer a request the batcher already popped."""

    async def main():
        server = ReproServer(StaticIRS(DATA, seed=1), window=0.5)
        await server.start()
        future = server.submit({"op": "sample", "lo": LO, "hi": HI, "t": 1, "id": 1})
        await asyncio.sleep(0.05)  # batcher holds it, sleeping the window
        await server.aclose()
        response = await asyncio.wait_for(future, timeout=2)
        assert response["error"]["type"] == "shutting_down"

    run(main())


def test_partial_bulk_failure_reports_applied_count():
    async def main():
        async with ReproServer(DynamicIRS([1.0, 2.0, 3.0, 4.0]), window=0.0) as server:
            client = ServeClient(server)
            response = await client.request(
                {"op": "delete_bulk", "values": [1.0, 99.0, 2.0]}
            )
            error = response["error"]
            assert error["type"] == "key_not_found"
            assert error["op_index"] == 1 and error["applied"] == 2
            count = await client.request({"op": "count", "lo": 0.0, "hi": 9.0})
            assert count["result"] == 2  # the two valid deletes committed

    run(main())


# -- the run_mixed features underneath ---------------------------------------


def test_run_mixed_count_ops():
    runner = BatchQueryRunner(DynamicIRS(DATA, seed=1))
    expected = sum(1 for v in DATA if LO <= v <= HI)
    mixed = runner.run_mixed(
        [BatchOp.count(LO, HI), ("count", LO, HI), BatchOp.insert(LO), ("count", LO, HI)]
    )
    assert mixed.samples[0] == expected
    assert mixed.samples[1] == expected
    assert mixed.samples[3] == expected + 1
    assert mixed.stats.extra["counts"] == 3


def test_run_mixed_capture_errors_alignment():
    runner = BatchQueryRunner(DynamicIRS(DATA, seed=1))
    mixed = runner.run_mixed(
        [
            BatchOp.sample(LO, HI, 3),
            BatchOp.delete(1e12),
            BatchOp.sample(1e9, 2e9, 1),
            BatchOp.count(LO, HI),
        ],
        capture_errors=True,
    )
    assert mixed.errors is not None
    assert mixed.errors[0] is None and mixed.errors[3] is None
    assert isinstance(mixed.errors[1], KeyNotFoundError)
    assert isinstance(mixed.errors[2], EmptyRangeError)
    assert len(mixed.samples[0]) == 3
    assert isinstance(mixed.samples[3], int)


def test_run_mixed_capture_bulk_update_attribution():
    """A failed coalesced delete run attributes the error to the bad op."""
    runner = BatchQueryRunner(DynamicIRS(DATA, seed=1))
    present = DATA[5]
    mixed = runner.run_mixed(
        [
            BatchOp.delete(present),
            BatchOp.delete(1e12),
            BatchOp.delete(DATA[6]),
            BatchOp.count(LO - 1e9, HI + 1e9),
        ],
        capture_errors=True,
    )
    assert mixed.errors[0] is None
    assert isinstance(mixed.errors[1], KeyNotFoundError)
    assert mixed.errors[2] is None
    # both valid deletes applied exactly once
    assert mixed.samples[3] == len(DATA) - 2


def test_run_mixed_without_capture_still_raises():
    runner = BatchQueryRunner(DynamicIRS(DATA, seed=1))
    with pytest.raises(KeyNotFoundError):
        runner.run_mixed([BatchOp.delete(1e12)])
    with pytest.raises(InvalidQueryError):
        runner.run_mixed([("bogus", 1.0)])


def test_run_mixed_coalesce_reads_groups_runs():
    runner = BatchQueryRunner(StaticIRS(DATA, seed=1))
    ops = [BatchOp.sample(LO, HI, 2, seed=i) for i in range(6)]
    ops += [BatchOp.count(LO, HI) for _ in range(4)]
    mixed = runner.run_mixed(ops, coalesce_reads=True)
    # one sample_bulk_many call + one peek_counts call
    assert mixed.stats.extra["read_bulk_calls"] == 2
    assert all(len(s) == 2 for s in mixed.samples[:6])
    expected = sum(1 for v in DATA if LO <= v <= HI)
    assert mixed.samples[6:] == [expected] * 4


def test_run_mixed_coalesced_reads_match_solo_calls():
    """Seeded reads return the same draws coalesced or alone."""
    runner = BatchQueryRunner(StaticIRS(DATA, seed=1))
    ops = [BatchOp.sample(LO, HI, 5, seed=100 + i) for i in range(4)]
    together = runner.run_mixed(ops, coalesce_reads=True)
    solo = [
        BatchQueryRunner(StaticIRS(DATA, seed=1)).run_mixed([op]).samples[0]
        for op in ops
    ]
    for got, want in zip(together.samples, solo):
        assert list(got) == list(want)


def test_run_seeded_queries_reproducible_any_grouping():
    sharded = ShardedIRS(DATA, num_shards=3, seed=2)
    runner = BatchQueryRunner(sharded)
    queries = [BatchQuery(LO, HI, 7, seed=900 + i) for i in range(5)]
    first = runner.run(queries)
    sharded.sample_bulk(LO, HI, 13)  # perturb facade stream
    second = runner.run(list(reversed(queries)))
    for q, want in zip(queries, first.samples):
        got = second.samples[len(queries) - 1 - queries.index(q)]
        assert list(got) == list(want)
    sharded.close()


def test_seeded_query_requires_bulk_capable_sampler():
    from repro.baselines import ReportThenSample

    runner = BatchQueryRunner(ReportThenSample(DATA, seed=1))
    with pytest.raises(InvalidQueryError):
        runner.run([BatchQuery(LO, HI, 2, seed=5)])


def test_static_sample_bulk_many_matches_sample_bulk():
    static = StaticIRS(DATA, seed=1)
    queries = [(LO, HI, 6), (DATA[0], DATA[-1], 3), (LO, HI, 0)]
    seeds = [51, 52, 53]
    grouped = static.sample_bulk_many(queries, seeds=seeds)
    for (lo, hi, t), seed, got in zip(queries, seeds, grouped):
        want = static.sample_bulk(lo, hi, t, seed=seed)
        assert list(got) == list(want)


def test_static_sample_bulk_many_empty_range_raises():
    static = StaticIRS(DATA, seed=1)
    with pytest.raises(EmptyRangeError):
        static.sample_bulk_many([(1e9, 2e9, 1)], seeds=[1])


def test_seeded_ranks_are_exact_and_in_bounds():
    from repro.rng import seeded_ranks

    ranks = seeded_ranks(range(1, 5001), [10] * 5000, [7] * 5000, [2] * 5000)
    assert len(ranks) == 10_000
    assert ranks.min() >= 10 and ranks.max() < 17
    # all 7 cells hit roughly uniformly
    import numpy as np

    counts = np.bincount(ranks - 10, minlength=7)
    assert counts.min() > 1200 and counts.max() < 1700
